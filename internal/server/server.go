// Package server is the network query service of the incremental distance
// join: an HTTP/JSON API (with NDJSON streaming) that exposes Join /
// SemiJoin / kNN / Clustering over named, registry-shared indexes as
// resumable cursors — the paper's incrementality ("pull the next closest
// pair on demand") lifted to a served system.
//
//	POST   /v1/query             create a cursor over a named index pair
//	GET    /v1/cursor/{id}/next  pull the next k pairs in distance order
//	GET    /v1/cursor/{id}/stream NDJSON-stream the next k pairs
//	GET    /v1/cursor/{id}       cursor status
//	DELETE /v1/cursor/{id}       close the cursor
//	GET    /v1/indexes           list registered indexes
//	GET    /healthz              liveness
//
// Cursors survive client pauses: the underlying incremental iterator stays
// open in a bounded cursor table and is reclaimed by TTL eviction, explicit
// DELETE, or server shutdown. Admission control rejects work the server
// cannot hold — a full cursor table, a saturated in-flight pull semaphore,
// or an exhausted queue-memory budget all answer 429 — so overload degrades
// into fast refusals instead of queue collapse. Every cursor runs under a
// per-query trace (internal/qtrace): its cursor id doubles as the query id,
// so /debug/queries/{id} serves the span tree and resource accounting of a
// finished cursor, and slow or failed cursors land in the slow-query log
// and flight recorder exactly like in-process runs.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distjoin"
	"distjoin/internal/obs"
	"distjoin/internal/otlpexport"
	"distjoin/internal/qtrace"
)

// Defaults for Config's zero fields.
const (
	DefaultMaxCursors   = 64
	DefaultMaxInflight  = 32
	DefaultMemBudget    = 256 << 20 // total queue-memory budget: 256 MiB
	DefaultCursorBudget = 4 << 20   // per-cursor reservation: 4 MiB
	DefaultMaxBatch     = 10_000
	DefaultTTL          = 2 * time.Minute
)

// Config configures a Server. The zero value serves an empty registry with
// the defaults above.
type Config struct {
	// Registry supplies the named indexes; NewServer creates an empty one
	// when nil.
	Registry *Registry
	// MaxCursors bounds the cursor table — the number of concurrently open
	// engine iterators. Creation beyond it answers 429.
	MaxCursors int
	// MaxInflight bounds concurrently executing pulls (next/stream) plus
	// cursor creations across all cursors. Excess requests answer 429
	// immediately rather than queueing.
	MaxInflight int
	// MemBudget is the total queue-memory budget in bytes shared by all
	// cursors: each cursor reserves its share at creation (the client's
	// queue_budget, default DefaultCursorBudget) and releases it on close.
	// This is the admission-control ledger over the engines' priority-queue
	// memory and the hybrid queue's share of the pager pool; a reservation
	// that would overdraw it answers 429.
	MemBudget int64
	// DefaultCursorBudget is the per-cursor reservation when the client
	// does not send queue_budget.
	DefaultCursorBudget int64
	// MaxBatch caps the k of one pull.
	MaxBatch int
	// TTL is how long an idle cursor survives between pulls. Every pull
	// extends the deadline.
	TTL time.Duration
	// SweepInterval is the janitor period (default TTL/4, at least 10ms).
	SweepInterval time.Duration
	// MaxCursorWall is the per-cursor total wall budget: a cursor older
	// than this is hard-canceled — its engine context expires, a live
	// pull surfaces ErrCanceled mid-work, and the cursor goes terminal
	// (410). It bounds the lifetime of any single query regardless of how
	// diligently a client keeps pulling. 0 disables the budget.
	MaxCursorWall time.Duration
	// PullTimeout is the default soft deadline of one next/stream pull
	// (overridable per request with ?timeout_ms=N). When it expires the
	// pull returns the pairs drawn so far — the cursor stays open and
	// resumable; only the one HTTP response is truncated. 0 disables the
	// default (a request-level timeout_ms still applies).
	PullTimeout time.Duration
	// Tracer receives per-cursor query traces; cursor ids double as query
	// ids. May be nil (no tracing).
	Tracer *distjoin.QueryTracer
	// Obs receives engine events and histograms from every cursor. May be
	// nil.
	Obs *distjoin.Recorder
	// Stats aggregates the work counters of every closed cursor. May be
	// nil.
	Stats *distjoin.Stats
	// Logger receives one structured line per finished HTTP request,
	// carrying endpoint, status, duration, and the trace/query identity of
	// the cursor it touched. May be nil (no request logging).
	Logger *slog.Logger
	// RED records per-endpoint request rate, error classes, and duration
	// histograms plus the pull-latency SLO burn rate; mount it on /metrics
	// via obs.HandlerTraced extras. May be nil.
	RED *obs.RED
	// Exporter receives one OTLP server span per pull, linked to the
	// cursor's query span, so multi-pull sessions stitch into one
	// distributed trace (wire the same exporter as the tracer's OnComplete
	// to ship the engine span trees too). May be nil (no span export).
	Exporter *otlpexport.Exporter
	// BaseOptions is the join-options template every cursor starts from;
	// request fields override it. This is where operators (and tests)
	// inject a QueueStore factory, RetryIO policy, profiling spans, or a
	// default queue configuration.
	BaseOptions distjoin.Options
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = NewRegistry()
	}
	if c.MaxCursors <= 0 {
		c.MaxCursors = DefaultMaxCursors
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = DefaultMaxInflight
	}
	if c.MemBudget <= 0 {
		c.MemBudget = DefaultMemBudget
	}
	if c.DefaultCursorBudget <= 0 {
		c.DefaultCursorBudget = DefaultCursorBudget
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.TTL / 4
	}
	if c.SweepInterval < 10*time.Millisecond {
		c.SweepInterval = 10 * time.Millisecond
	}
	return c
}

// Server is the query service: registry + cursor table + admission control
// behind an http.Handler. Create with NewServer, mount Handler (or use
// Start), and Close to reclaim every open cursor.
type Server struct {
	cfg      Config
	table    *cursorTable
	inflight chan struct{}
	seq      atomic.Uint64
	closed   atomic.Bool
	draining atomic.Bool
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in the panic-recovery middleware

	budgetMu   sync.Mutex
	budgetUsed int64

	janitorStop chan struct{}
	janitorDone chan struct{}

	// now is the clock, swappable in TTL tests.
	now func() time.Time
}

// NewServer creates a Server and starts its TTL janitor.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		table:       newCursorTable(cfg.MaxCursors),
		inflight:    make(chan struct{}, cfg.MaxInflight),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
		now:         time.Now,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/cursor/", s.handleCursor)
	s.mux.HandleFunc("/v1/indexes", s.handleIndexes)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	// Liveness vs readiness: /healthz answers ok for as long as the
	// process serves HTTP at all, while /readyz flips to 503 the moment a
	// drain begins, so load balancers stop routing new queries to an
	// instance that is shutting down (its existing cursors still answer).
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() || s.closed.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	})
	// observe outside recover: a handler panic becomes recoverMiddleware's
	// 500, which the RED metrics and request log then see as a server error.
	s.handler = s.observeMiddleware(recoverMiddleware(s.mux))
	go s.janitor()
	return s
}

// recoverMiddleware converts a handler panic into a JSON 500 instead of
// the net/http default (kill the connection, dump the goroutine stack).
// The pull path additionally latches the panicking cursor as failed before
// re-panicking into this middleware, so its query trace lands
// error-annotated; see handleNext.
func recoverMiddleware(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				writeErr(w, &httpError{
					Status: http.StatusInternalServerError,
					Msg:    fmt.Sprintf("internal error: %v", p),
				})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// Handler returns the service's HTTP handler, for mounting alongside
// /metrics and /debug/queries in a caller-owned mux.
func (s *Server) Handler() http.Handler { return s.handler }

// Registry returns the server's index registry.
func (s *Server) Registry() *Registry { return s.cfg.Registry }

// OpenCursors returns the number of live cursors (diagnostic).
func (s *Server) OpenCursors() int { return s.table.len() }

// BudgetUsed returns the reserved queue-memory bytes (diagnostic).
func (s *Server) BudgetUsed() int64 {
	s.budgetMu.Lock()
	defer s.budgetMu.Unlock()
	return s.budgetUsed
}

// Close stops the janitor and closes every open cursor, waiting out
// in-flight pulls so every engine iterator is released exactly once. It
// does not close the registry (the caller owns it via Config).
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.janitorStop)
	<-s.janitorDone
	var first error
	for _, c := range s.table.snapshot() {
		// Lock order op → st: waits for an in-flight pull to finish, then
		// closes the engine under st.
		c.op.Lock()
		c.st.Lock()
		err := c.closeEngine()
		c.st.Unlock()
		c.op.Unlock()
		s.finishCursor(c, "server shutting down")
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// janitor periodically evicts cursors whose TTL has lapsed.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	t := time.NewTicker(s.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.sweep(s.now())
		}
	}
}

// sweep evicts every cursor past its deadline. A cursor mid-pull is only
// doomed: the pull in progress completes normally and the release path
// finishes the eviction, so an engine is never closed under a reader.
func (s *Server) sweep(now time.Time) {
	for _, c := range s.table.snapshot() {
		c.st.Lock()
		expired := now.After(c.deadline)
		if !expired {
			c.st.Unlock()
			continue
		}
		if c.op.TryLock() {
			c.closeEngine()
			c.st.Unlock()
			c.op.Unlock()
			s.finishCursor(c, "cursor expired (TTL)")
		} else {
			c.doomed = true
			c.st.Unlock()
			// The cursor is mid-pull: interrupt the live engine so the pull
			// surfaces ErrCanceled promptly instead of streaming until k; the
			// release path (endPull) then completes the eviction.
			c.hardCancel(errCursorExpired)
		}
	}
}

// beginDrain flips readiness to 503 and hard-cancels every live cursor, so
// in-flight pulls surface ErrCanceled promptly and new queries are refused
// while existing clients can still observe their cursors' terminal state.
func (s *Server) beginDrain() {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	for _, c := range s.table.snapshot() {
		c.hardCancel(errCursorDrained)
	}
}

// finishCursor removes a cursor whose engine is already closed from the
// table, merges its counters into the server aggregate, and releases its
// budget reservation. Idempotent per cursor id (table.remove no-ops on a
// second call), but the budget must be released exactly once: the caller
// patterns guarantee single release because every path to finishCursor
// first won the engine-close race under st.
func (s *Server) finishCursor(c *cursor, reason string) {
	s.table.remove(c.id, reason)
	c.st.Lock()
	released := c.budget
	c.budget = 0
	stats := c.stats
	c.stats = nil
	c.st.Unlock()
	if released > 0 {
		s.releaseBudget(released)
	}
	if stats != nil && s.cfg.Stats != nil {
		s.cfg.Stats.Merge(stats)
	}
}

// reserveBudget takes bytes from the shared queue-memory budget; it
// reports false when the reservation would overdraw it.
func (s *Server) reserveBudget(bytes int64) bool {
	s.budgetMu.Lock()
	defer s.budgetMu.Unlock()
	if s.budgetUsed+bytes > s.cfg.MemBudget {
		return false
	}
	s.budgetUsed += bytes
	return true
}

func (s *Server) releaseBudget(bytes int64) {
	s.budgetMu.Lock()
	s.budgetUsed -= bytes
	s.budgetMu.Unlock()
}

// acquire takes an in-flight slot, answering 429 when the semaphore is
// saturated (no queueing: overload must fail fast, not pile up).
func (s *Server) acquire() *httpError {
	select {
	case s.inflight <- struct{}{}:
		return nil
	default:
		return &httpError{
			Status: http.StatusTooManyRequests,
			Msg:    "server is at its in-flight request limit; retry shortly",
			Retry:  true,
		}
	}
}

func (s *Server) release() { <-s.inflight }

// httpError is a JSON-rendered error with its HTTP status.
type httpError struct {
	Status int
	Msg    string
	Retry  bool // adds Retry-After: 1
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeErr(w http.ResponseWriter, e *httpError) {
	w.Header().Set("Content-Type", "application/json")
	if e.Retry {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(e.Status)
	json.NewEncoder(w).Encode(errorBody{Error: e.Msg, Status: e.Status})
}

func badRequest(msg string) *httpError {
	return &httpError{Status: http.StatusBadRequest, Msg: msg}
}

// QueryRequest is the POST /v1/query body. Zero-valued fields inherit the
// server's BaseOptions template, so a minimal request is just
// {"kind":"join","index1":"a","index2":"b"}.
type QueryRequest struct {
	// Kind selects the operation: join, semijoin, knn, clustering.
	Kind   string `json:"kind"`
	Index1 string `json:"index1"`
	Index2 string `json:"index2"`
	// K is the neighbours-per-object count of a knn cursor (default 1).
	K int `json:"k,omitempty"`
	// Filter names the semi-join filtering strategy: outside, inside1,
	// inside2, local, globalnodes, globalall (default globalall).
	Filter string `json:"filter,omitempty"`
	// MaxPairs bounds the result (STOP AFTER, §2.2.4 estimation).
	MaxPairs int `json:"max_pairs,omitempty"`
	// MinDist / MaxDist restrict the reported distance range.
	MinDist float64 `json:"min_dist,omitempty"`
	MaxDist float64 `json:"max_dist,omitempty"`
	// Metric: euclidean (default), manhattan, chessboard.
	Metric string `json:"metric,omitempty"`
	// Queue: memory or hybrid.
	Queue string `json:"queue,omitempty"`
	// HybridDT is the hybrid queue's distance increment (0: adaptive).
	HybridDT float64 `json:"hybrid_dt,omitempty"`
	// Traversal: even (default), basic, simultaneous.
	Traversal string `json:"traversal,omitempty"`
	// Parallelism >1 runs the partitioned parallel path per cursor.
	Parallelism int `json:"parallelism,omitempty"`
	// OmitEqualIDs drops identity pairs (self joins).
	OmitEqualIDs bool `json:"omit_equal_ids,omitempty"`
	// QueueBudget is the cursor's queue-memory reservation in bytes
	// (default Config.DefaultCursorBudget); admission is denied when the
	// shared budget cannot cover it.
	QueueBudget int64 `json:"queue_budget,omitempty"`
}

// CreateResponse answers a successful POST /v1/query.
type CreateResponse struct {
	Cursor      string `json:"cursor"`
	QueryID     string `json:"query_id"`
	Kind        string `json:"kind"`
	Index1      string `json:"index1"`
	Index2      string `json:"index2"`
	ExpiresAt   string `json:"expires_at"`
	BudgetBytes int64  `json:"budget_bytes"`
	// TraceParent is the W3C context of the cursor's query span — a child
	// of the traceparent the request carried, or a fresh trace root. Echoed
	// in the traceparent response header too; clients that keep sending
	// their own context on pulls stitch the whole session into one trace.
	TraceParent string `json:"traceparent,omitempty"`
}

// PairJSON is one result pair on the wire.
type PairJSON struct {
	Obj1 uint64  `json:"obj1"`
	Obj2 uint64  `json:"obj2"`
	Dist float64 `json:"dist"`
}

// NextResponse answers GET /v1/cursor/{id}/next.
type NextResponse struct {
	Cursor   string     `json:"cursor"`
	Pairs    []PairJSON `json:"pairs"`
	Done     bool       `json:"done"`
	Reported int64      `json:"reported"`
	// ExpiresAt is the renewed idle deadline after this pull.
	ExpiresAt string `json:"expires_at"`
	// Truncated names why the pull returned fewer than k pairs without
	// being done ("pull timeout" or "client disconnected"). The cursor is
	// still open: pull again to resume from the exact pair after the last
	// one delivered.
	Truncated string `json:"truncated,omitempty"`
}

// InfoResponse answers GET /v1/cursor/{id}.
type InfoResponse struct {
	Cursor    string `json:"cursor"`
	QueryID   string `json:"query_id"`
	Kind      string `json:"kind"`
	Index1    string `json:"index1"`
	Index2    string `json:"index2"`
	State     string `json:"state"`
	Reported  int64  `json:"reported"`
	CreatedAt string `json:"created_at"`
	ExpiresAt string `json:"expires_at"`
	Error     string `json:"error,omitempty"`
}

// handleQuery serves POST /v1/query: admission, engine construction, cursor
// registration.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, &httpError{Status: http.StatusMethodNotAllowed, Msg: "POST only"})
		return
	}
	if s.closed.Load() || s.draining.Load() {
		writeErr(w, &httpError{Status: http.StatusServiceUnavailable, Msg: "server is shutting down"})
		return
	}
	if e := s.acquire(); e != nil {
		writeErr(w, e)
		return
	}
	defer s.release()

	var req QueryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, badRequest("invalid request body: "+err.Error()))
		return
	}
	c, e := s.createCursor(&req, inboundContext(r))
	if e != nil {
		writeErr(w, e)
		return
	}
	c.st.Lock()
	expires := c.deadline
	c.st.Unlock()
	echoTrace(w, c.sc, c.queryID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(CreateResponse{
		Cursor:      c.id,
		QueryID:     c.queryID,
		Kind:        c.kind,
		Index1:      c.index1,
		Index2:      c.index2,
		ExpiresAt:   expires.UTC().Format(time.RFC3339Nano),
		BudgetBytes: c.budget,
		TraceParent: c.sc.TraceParent(),
	})
}

// inboundContext extracts the W3C trace context of a request. Per the spec
// tracestate is only meaningful alongside a valid traceparent.
func inboundContext(r *http.Request) qtrace.SpanContext {
	sc, ok := qtrace.ParseTraceParent(r.Header.Get("traceparent"))
	if !ok {
		return qtrace.SpanContext{}
	}
	sc.State = r.Header.Get("tracestate")
	return sc
}

// echoTrace stamps the response with the span context the server minted
// for this request plus the cursor's query id, so clients (and the request
// log) can correlate the HTTP exchange with the exported trace.
func echoTrace(w http.ResponseWriter, sc qtrace.SpanContext, queryID string) {
	if tp := sc.TraceParent(); tp != "" {
		w.Header().Set("Traceparent", tp)
		if sc.State != "" {
			w.Header().Set("Tracestate", sc.State)
		}
	}
	if queryID != "" {
		w.Header().Set("X-Distjoin-Query", queryID)
	}
}

// createCursor runs admission and opens the engine iterator. parent is the
// client's inbound trace context (zero when the request carried none): the
// cursor's query trace becomes its child span, so the whole cursor session
// lands in the client's distributed trace.
func (s *Server) createCursor(req *QueryRequest, parent qtrace.SpanContext) (*cursor, *httpError) {
	si1, err := s.cfg.Registry.Get(req.Index1)
	if err != nil {
		return nil, &httpError{Status: http.StatusNotFound, Msg: err.Error()}
	}
	si2, err := s.cfg.Registry.Get(req.Index2)
	if err != nil {
		return nil, &httpError{Status: http.StatusNotFound, Msg: err.Error()}
	}
	budget := req.QueueBudget
	if budget < 0 {
		return nil, badRequest("queue_budget must be non-negative")
	}
	if budget == 0 {
		budget = s.cfg.DefaultCursorBudget
	}
	if !s.reserveBudget(budget) {
		return nil, &httpError{
			Status: http.StatusTooManyRequests,
			Msg:    "queue-memory budget exhausted; retry after a cursor closes or expires",
			Retry:  true,
		}
	}
	id := fmt.Sprintf("c%07d", s.seq.Add(1))
	opts, e := s.buildOptions(req, id)
	if e != nil {
		s.releaseBudget(budget)
		return nil, e
	}
	// Per-cursor engine context: every hard cancellation (DELETE, TTL doom,
	// wall budget, drain) flows through it into the engine, which surfaces
	// a sticky ErrCanceled carrying the cause — even mid-pull.
	base, cancelCause := context.WithCancelCause(context.Background())
	ctx := base
	stopWall := context.CancelFunc(func() {})
	if s.cfg.MaxCursorWall > 0 {
		ctx, stopWall = context.WithDeadlineCause(base, s.now().Add(s.cfg.MaxCursorWall), errCursorWallOver)
	}
	cancel := func(cause error) {
		cancelCause(cause)
		stopWall()
	}
	opts.Context = ctx
	// Register the trace identity before the engine begins: Begin adopts it,
	// making the engine's span tree a child of the client's span (or a fresh
	// trace root). Nil-safe — an untraced server still propagates context.
	sc := opts.Tracer.PreBegin(id, parent)
	next, closeFn, abortFn, err := openIterator(req, si1, si2, opts)
	if err != nil {
		opts.Tracer.Unlink(id)
		cancel(nil)
		s.releaseBudget(budget)
		// Engine construction errors are almost always invalid client
		// options, except a dead queue-store backend, which is ours.
		if errors.Is(err, distjoin.ErrQueueStore) {
			return nil, &httpError{Status: http.StatusInternalServerError, Msg: err.Error()}
		}
		return nil, badRequest(err.Error())
	}
	now := s.now()
	c := &cursor{
		id:      id,
		kind:    normKind(req.Kind),
		index1:  req.Index1,
		index2:  req.Index2,
		queryID: id,
		budget:  budget,
		created: now,
		next:    next,
		close:   closeFn,
		abort:   abortFn,
		stats:   opts.Counters,
		ctx:     ctx,
		cancel:  cancel,
		sc:      sc,
		client:  parent,
	}
	c.deadline = now.Add(s.cfg.TTL)
	if e := s.table.insert(c); e != nil {
		// Bounded table: close the just-opened engine and refuse.
		c.st.Lock()
		c.closeEngine()
		c.st.Unlock()
		s.releaseBudget(budget)
		return nil, e
	}
	return c, nil
}

// normKind canonicalizes the operation name.
func normKind(kind string) string {
	k := strings.ToLower(strings.TrimSpace(kind))
	if k == "" {
		k = "join"
	}
	return k
}

// buildOptions derives the cursor's join options: the server's BaseOptions
// template, overridden by the request's non-zero fields, wired to the
// server's tracer/recorder and a per-cursor counter set.
func (s *Server) buildOptions(req *QueryRequest, queryID string) (distjoin.Options, *httpError) {
	opts := s.cfg.BaseOptions
	if req.MaxPairs < 0 {
		return opts, badRequest("max_pairs must be non-negative")
	}
	opts.MaxPairs = req.MaxPairs
	opts.MinDist = req.MinDist
	opts.MaxDist = req.MaxDist
	if req.MaxDist == 0 {
		opts.MaxDist = math.Inf(1)
	}
	opts.OmitEqualIDs = opts.OmitEqualIDs || req.OmitEqualIDs
	switch strings.ToLower(req.Metric) {
	case "":
	case "euclidean":
		opts.Metric = distjoin.Euclidean
	case "manhattan":
		opts.Metric = distjoin.Manhattan
	case "chessboard":
		opts.Metric = distjoin.Chessboard
	default:
		return opts, badRequest("unknown metric " + strconv.Quote(req.Metric))
	}
	switch strings.ToLower(req.Queue) {
	case "":
	case "memory":
		opts.Queue = distjoin.QueueMemory
	case "hybrid":
		opts.Queue = distjoin.QueueHybrid
	default:
		return opts, badRequest("unknown queue " + strconv.Quote(req.Queue))
	}
	if req.HybridDT != 0 {
		opts.HybridDT = req.HybridDT
	}
	switch strings.ToLower(req.Traversal) {
	case "":
	case "even":
		opts.Traversal = distjoin.TraverseEven
	case "basic":
		opts.Traversal = distjoin.TraverseBasic
	case "simultaneous":
		opts.Traversal = distjoin.TraverseSimultaneous
	default:
		return opts, badRequest("unknown traversal " + strconv.Quote(req.Traversal))
	}
	if req.Parallelism != 0 {
		opts.Parallelism = req.Parallelism
	}
	if s.cfg.Obs != nil && opts.Obs == nil {
		opts.Obs = s.cfg.Obs
	}
	if s.cfg.Tracer != nil && opts.Tracer == nil {
		opts.Tracer = s.cfg.Tracer
	}
	if opts.Tracer != nil && opts.QueryID == "" {
		// Cursor id doubles as query id — and as the key the createCursor
		// PreBegin registration is consumed under.
		opts.QueryID = queryID
	}
	if opts.Counters == nil {
		// Per-cursor counters: the qtrace resource delta stays scoped to
		// this cursor, and finishCursor merges them into Config.Stats.
		opts.Counters = &distjoin.Stats{}
	}
	return opts, nil
}

// parseFilter maps the wire name to the §4.2.1 filtering ladder.
func parseFilter(name string) (distjoin.SemiFilter, error) {
	switch strings.ToLower(name) {
	case "", "globalall":
		return distjoin.FilterGlobalAll, nil
	case "outside":
		return distjoin.FilterOutside, nil
	case "inside1":
		return distjoin.FilterInside1, nil
	case "inside2":
		return distjoin.FilterInside2, nil
	case "local":
		return distjoin.FilterLocal, nil
	case "globalnodes":
		return distjoin.FilterGlobalNodes, nil
	}
	return 0, fmt.Errorf("unknown filter %q", name)
}

// openIterator starts the engine for the requested operation over the two
// registry indexes.
func openIterator(req *QueryRequest, si1, si2 distjoin.SpatialIndex, opts distjoin.Options) (func() (distjoin.Pair, bool, error), func() error, func(error) error, error) {
	switch normKind(req.Kind) {
	case "join":
		j, err := distjoin.DistanceJoinIndexes(si1, si2, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return j.Next, j.Close, j.Abort, nil
	case "semijoin":
		f, err := parseFilter(req.Filter)
		if err != nil {
			return nil, nil, nil, err
		}
		sj, err := distjoin.DistanceSemiJoinIndexes(si1, si2, f, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return sj.Next, sj.Close, sj.Abort, nil
	case "knn":
		f, err := parseFilter(req.Filter)
		if err != nil {
			return nil, nil, nil, err
		}
		k := req.K
		if k == 0 {
			k = 1
		}
		sj, err := distjoin.KNearestJoinIndexes(si1, si2, k, f, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return sj.Next, sj.Close, sj.Abort, nil
	case "clustering":
		f, err := parseFilter(req.Filter)
		if err != nil {
			return nil, nil, nil, err
		}
		sj, err := distjoin.ClusteringJoinIndexes(si1, si2, f, opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return sj.Next, sj.Close, sj.Abort, nil
	}
	return nil, nil, nil, fmt.Errorf("unknown kind %q (want join, semijoin, knn or clustering)", req.Kind)
}

// handleCursor routes /v1/cursor/{id}[/next|/stream].
func (s *Server) handleCursor(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/cursor/")
	id, verb, _ := strings.Cut(rest, "/")
	if id == "" {
		writeErr(w, badRequest("missing cursor id"))
		return
	}
	switch {
	case verb == "" && r.Method == http.MethodGet:
		s.handleInfo(w, id)
	case verb == "" && r.Method == http.MethodDelete:
		s.handleDelete(w, id)
	case verb == "next" && r.Method == http.MethodGet:
		s.handleNext(w, r, id, false)
	case verb == "stream" && r.Method == http.MethodGet:
		s.handleNext(w, r, id, true)
	default:
		writeErr(w, &httpError{Status: http.StatusMethodNotAllowed, Msg: "unsupported cursor operation"})
	}
}

// beginPull admits one pull on a cursor: in-flight slot, lookup, op lock,
// terminal-state checks. On success the caller owns c.op and must call
// endPull.
func (s *Server) beginPull(id string) (*cursor, *httpError) {
	if e := s.acquire(); e != nil {
		return nil, e
	}
	c, e := s.table.lookup(id)
	if e != nil {
		s.release()
		return nil, e
	}
	if !c.op.TryLock() {
		s.release()
		return nil, &httpError{Status: http.StatusConflict, Msg: errCursorBusy.Error(), Retry: true}
	}
	c.st.Lock()
	if c.state == cursorFailed {
		msg := "cursor " + id + " failed: " + c.err.Error()
		c.st.Unlock()
		c.op.Unlock()
		s.release()
		return nil, &httpError{Status: http.StatusGone, Msg: msg}
	}
	// Extend the TTL at pull start so a long stream is not doomed under
	// the janitor mid-pull more often than necessary.
	c.deadline = s.now().Add(s.cfg.TTL)
	c.st.Unlock()
	return c, nil
}

// endPull releases the op lock and completes a doomed cursor's eviction.
func (s *Server) endPull(c *cursor) {
	c.st.Lock()
	doomed := c.doomed
	if doomed {
		c.closeEngine()
	}
	// Renew the idle deadline as the pull releases the cursor.
	c.deadline = s.now().Add(s.cfg.TTL)
	c.st.Unlock()
	c.op.Unlock()
	if doomed {
		s.finishCursor(c, "cursor expired (TTL)")
	}
	s.release()
}

// pull draws up to k pairs from the cursor's iterator. Terminal outcomes
// (exhaustion, engine error) close the engine in place — landing the query
// trace — and latch the cursor state. rctx is the pull's soft deadline
// (request context + timeout): when it expires the pull stops between Next
// calls and returns the pairs drawn so far with a truncation reason — the
// cursor itself stays open and resumable. Caller holds c.op.
func (s *Server) pull(c *cursor, k int, rctx context.Context) ([]PairJSON, bool, string, error) {
	c.st.Lock()
	exhausted := c.state == cursorDone
	c.st.Unlock()
	if exhausted {
		// The engine was already closed on exhaustion; the cursor idles in
		// its done state until the TTL or a DELETE reclaims it.
		return []PairJSON{}, true, "", nil
	}
	pairs := make([]PairJSON, 0, k)
	for len(pairs) < k {
		if rctx != nil && rctx.Err() != nil {
			return pairs, false, softStopReason(rctx), nil
		}
		p, ok, err := c.next()
		if err != nil {
			c.st.Lock()
			c.state = cursorFailed
			c.err = err
			c.closeEngine()
			c.st.Unlock()
			return pairs, false, "", err
		}
		if !ok {
			c.st.Lock()
			c.state = cursorDone
			c.closeEngine()
			c.st.Unlock()
			return pairs, true, "", nil
		}
		pairs = append(pairs, PairJSON{Obj1: uint64(p.Obj1), Obj2: uint64(p.Obj2), Dist: p.Dist})
	}
	c.st.Lock()
	done := c.state == cursorDone
	c.st.Unlock()
	return pairs, done, "", nil
}

// softStopReason names why a pull stopped early. Soft stops never touch the
// cursor's engine context — only the one HTTP response is cut short.
func softStopReason(rctx context.Context) string {
	if errors.Is(rctx.Err(), context.DeadlineExceeded) {
		return "pull timeout"
	}
	return "client disconnected"
}

// handleNext serves one pull, either as a single JSON document or as an
// NDJSON stream (one pair per line, then a terminator line with done and
// reported — chunked transfer, flushed in blocks).
func (s *Server) handleNext(w http.ResponseWriter, r *http.Request, id string, stream bool) {
	k := 1
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, badRequest("k must be a positive integer"))
			return
		}
		k = n
	}
	if k > s.cfg.MaxBatch {
		k = s.cfg.MaxBatch
	}
	// Soft per-pull deadline: the request context (canceled on client
	// disconnect) plus an optional timeout — per-request timeout_ms, else
	// Config.PullTimeout. Expiry truncates this one response; the cursor
	// stays open.
	timeout := s.cfg.PullTimeout
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, badRequest("timeout_ms must be a positive integer"))
			return
		}
		timeout = time.Duration(n) * time.Millisecond
	}
	rctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(rctx, timeout)
		defer cancel()
	}
	c, e := s.beginPull(id)
	if e != nil {
		writeErr(w, e)
		return
	}
	defer s.endPull(c)
	// Latch a handler panic as the cursor's terminal error before endPull
	// releases it and the re-panic reaches recoverMiddleware's 500: the
	// engine closes here, so the query trace lands error-annotated in the
	// flight recorder instead of the cursor idling as if still healthy.
	defer func() {
		if p := recover(); p != nil {
			c.st.Lock()
			if c.state == cursorOpen {
				c.state = cursorFailed
				c.err = fmt.Errorf("internal panic: %v", p)
				c.closeEngine()
			}
			c.st.Unlock()
			panic(p)
		}
	}()

	// Pull span identity up front: the response headers carry it (echoed
	// before any body byte), the span itself is exported once the pull's
	// outcome is known.
	pullStart := time.Now()
	psc, parentSpan := s.pullSpanStart(r, c)
	echoTrace(w, psc, c.queryID)

	if stream {
		n, done, truncated, err := s.streamPairs(w, rctx, c, k)
		s.finishPullSpan(c, psc, parentSpan, pullStart, "cursor stream", k, n, done, truncated, err)
		return
	}
	pairs, done, truncated, err := s.pull(c, k, rctx)
	s.finishPullSpan(c, psc, parentSpan, pullStart, "cursor next", k, int64(len(pairs)), done, truncated, err)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, distjoin.ErrCanceled) {
			// A hard cancellation (DELETE, TTL, wall budget, drain) made the
			// cursor terminal; Gone matches what every later pull will say.
			status = http.StatusGone
		}
		writeErr(w, &httpError{
			Status: status,
			Msg:    "cursor " + id + " failed: " + err.Error(),
		})
		return
	}
	c.st.Lock()
	c.reported += int64(len(pairs))
	reported := c.reported
	expires := s.now().Add(s.cfg.TTL)
	c.st.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(NextResponse{
		Cursor:    c.id,
		Pairs:     pairs,
		Done:      done,
		Reported:  reported,
		ExpiresAt: expires.UTC().Format(time.RFC3339Nano),
		Truncated: truncated,
	})
}

// streamTrailer is the final NDJSON line of a stream pull.
type streamTrailer struct {
	Done     bool   `json:"done"`
	Reported int64  `json:"reported"`
	Error    string `json:"error,omitempty"`
	// Truncated mirrors NextResponse.Truncated: the stream stopped short of
	// k for a soft reason and the cursor remains resumable.
	Truncated string `json:"truncated,omitempty"`
}

// streamPairs writes up to k pairs as NDJSON. Each line is one PairJSON;
// the last line is a streamTrailer. An engine error mid-stream appears in
// the trailer (headers are long gone), and the cursor is terminal. A soft
// stop (rctx expired: client gone or pull timeout) ends the stream between
// Next calls with the reason in the trailer, cursor still open. The return
// values describe the pull's outcome for its exported span.
func (s *Server) streamPairs(w http.ResponseWriter, rctx context.Context, c *cursor, k int) (int64, bool, string, error) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var n int64
	var pullErr error
	var truncated string
	c.st.Lock()
	done := c.state == cursorDone
	c.st.Unlock()
	for i := 0; !done && i < k; i++ {
		if rctx != nil && rctx.Err() != nil {
			truncated = softStopReason(rctx)
			break
		}
		p, ok, err := c.next()
		if err != nil {
			pullErr = err
			c.st.Lock()
			c.state = cursorFailed
			c.err = err
			c.closeEngine()
			c.st.Unlock()
			break
		}
		if !ok {
			done = true
			c.st.Lock()
			c.state = cursorDone
			c.closeEngine()
			c.st.Unlock()
			break
		}
		enc.Encode(PairJSON{Obj1: uint64(p.Obj1), Obj2: uint64(p.Obj2), Dist: p.Dist})
		n++
		if flusher != nil && n%64 == 0 {
			flusher.Flush()
		}
	}
	c.st.Lock()
	c.reported += n
	reported := c.reported
	c.st.Unlock()
	tr := streamTrailer{Done: done, Reported: reported, Truncated: truncated}
	if pullErr != nil {
		tr.Error = pullErr.Error()
	}
	enc.Encode(tr)
	if flusher != nil {
		flusher.Flush()
	}
	return n, done, truncated, pullErr
}

// handleInfo serves cursor status.
func (s *Server) handleInfo(w http.ResponseWriter, id string) {
	c, e := s.table.lookup(id)
	if e != nil {
		writeErr(w, e)
		return
	}
	echoTrace(w, c.sc, c.queryID)
	c.st.Lock()
	state := "open"
	switch c.state {
	case cursorDone:
		state = "done"
	case cursorFailed:
		state = "failed"
	}
	resp := InfoResponse{
		Cursor:    c.id,
		QueryID:   c.queryID,
		Kind:      c.kind,
		Index1:    c.index1,
		Index2:    c.index2,
		State:     state,
		Reported:  c.reported,
		CreatedAt: c.created.UTC().Format(time.RFC3339Nano),
		ExpiresAt: c.deadline.UTC().Format(time.RFC3339Nano),
	}
	if c.err != nil {
		resp.Error = c.err.Error()
	}
	c.st.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleDelete closes a cursor explicitly. It waits out an in-flight pull
// (op.Lock) so the engine is never closed under a reader.
func (s *Server) handleDelete(w http.ResponseWriter, id string) {
	c, e := s.table.lookup(id)
	if e != nil {
		writeErr(w, e)
		return
	}
	echoTrace(w, c.sc, c.queryID)
	// Hard-cancel before taking op: an in-flight pull surfaces ErrCanceled
	// promptly, so DELETE never waits out a long stream to finish.
	c.hardCancel(errCursorDeleted)
	c.op.Lock()
	c.st.Lock()
	err := c.closeEngine()
	c.st.Unlock()
	c.op.Unlock()
	s.finishCursor(c, "cursor deleted by client")
	if err != nil {
		writeErr(w, &httpError{Status: http.StatusInternalServerError, Msg: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleIndexes lists the registry.
func (s *Server) handleIndexes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, &httpError{Status: http.StatusMethodNotAllowed, Msg: "GET only"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.cfg.Registry.List())
}

// Running is a live HTTP listener serving a Server (and any extra handlers
// mounted beside it); Start returns one, distjoind and the in-process
// load-test harness both use it.
type Running struct {
	srv    *Server
	ln     net.Listener
	hs     *http.Server
	served chan struct{}
	closed atomic.Bool
}

// Start binds addr (":0" for an ephemeral port) and serves the query
// service in a background goroutine. mount, when non-nil, may add extra
// routes (metrics, debug) to the mux before serving.
func Start(addr string, cfg Config, mount func(mux *http.ServeMux)) (*Running, error) {
	srv := NewServer(cfg)
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if mount != nil {
		mount(mux)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return nil, err
	}
	hs := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	run := &Running{srv: srv, ln: ln, hs: hs, served: make(chan struct{})}
	go func() {
		defer close(run.served)
		hs.Serve(ln)
	}()
	return run, nil
}

// Addr returns the bound address.
func (r *Running) Addr() string { return r.ln.Addr().String() }

// Server returns the underlying query service.
func (r *Running) Server() *Server { return r.srv }

// Shutdown drains the service within the given window: readiness flips to
// 503, every live cursor is hard-canceled (an in-flight pull surfaces
// ErrCanceled), and the listener stays up through the window so clients
// observe their cursors' terminal 410s instead of connection resets. Once
// in-flight pulls drain (or the window lapses) the HTTP server stops and
// every remaining cursor is closed. Idempotent with Close; distjoind calls
// this from its SIGTERM handler.
func (r *Running) Shutdown(drain time.Duration) error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	deadline := time.Now().Add(drain)
	r.srv.beginDrain()
	// Grace poll: in-flight pulls are already canceled and unwind quickly;
	// give their responses (and any follow-up 410 probes) the window.
	for time.Now().Before(deadline) && len(r.srv.inflight) > 0 {
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	err := r.hs.Shutdown(ctx)
	cancel()
	// Force-close whatever outlived the window (idle keep-alives are closed
	// by Shutdown itself; this catches wedged streams).
	r.hs.Close()
	<-r.served
	if cerr := r.srv.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, http.ErrServerClosed) || errors.Is(err, context.DeadlineExceeded) {
		err = nil
	}
	return err
}

// Close stops the listener, waits for the serve goroutine, and closes the
// query service (every open cursor). Idempotent.
func (r *Running) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := r.hs.Close()
	<-r.served
	if cerr := r.srv.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}
