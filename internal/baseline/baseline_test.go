package baseline

import (
	"math"
	"math/rand"
	"testing"

	"distjoin/internal/distjoin"
	"distjoin/internal/geom"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

func buildTree(t testing.TB, pts []geom.Point) *rtree.Tree {
	t.Helper()
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
	}
	tr, err := rtree.BulkLoad(rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 32}, items)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func randPts(seed int64, n int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rnd.Float64()*500, rnd.Float64()*500)
	}
	return pts
}

// incrementalJoin drains the incremental algorithm for comparison.
func incrementalJoin(t *testing.T, t1, t2 *rtree.Tree, limit int, opts distjoin.Options) []distjoin.Pair {
	t.Helper()
	j, err := distjoin.NewJoin(t1, t2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var out []distjoin.Pair
	for limit <= 0 || len(out) < limit {
		p, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, p)
	}
	return out
}

func TestNestedLoopMatchesIncremental(t *testing.T) {
	a, b := randPts(1, 60), randPts(2, 70)
	ta, tb := buildTree(t, a), buildTree(t, b)
	nl, err := NestedLoopJoin(ta, tb, 500, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc := incrementalJoin(t, ta, tb, 500, distjoin.Options{})
	if len(nl) != len(inc) {
		t.Fatalf("lengths differ: %d vs %d", len(nl), len(inc))
	}
	for i := range nl {
		if math.Abs(nl[i].Dist-inc[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: NL %g, incremental %g", i, nl[i].Dist, inc[i].Dist)
		}
	}
}

func TestNestedLoopFullCount(t *testing.T) {
	ta, tb := buildTree(t, randPts(3, 25)), buildTree(t, randPts(4, 30))
	all, err := NestedLoopJoin(ta, tb, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 25*30 {
		t.Fatalf("full NL join: %d pairs", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Dist < all[i-1].Dist {
			t.Fatal("NL output not sorted")
		}
	}
}

func TestNestedLoopScanOnly(t *testing.T) {
	ta, tb := buildTree(t, randPts(5, 40)), buildTree(t, randPts(6, 50))
	c := &stats.Counters{}
	n, err := NestedLoopScanOnly(ta, tb, Options{Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	if n != 40*50 {
		t.Fatalf("scan computed %d distances, want %d", n, 40*50)
	}
	if c.DistCalcs != n {
		t.Fatalf("counter %d != returned %d", c.DistCalcs, n)
	}
}

func TestWithinJoinSortMatchesIncrementalRange(t *testing.T) {
	a, b := randPts(7, 80), randPts(8, 90)
	ta, tb := buildTree(t, a), buildTree(t, b)
	const dmax = 40.0
	within, err := WithinJoinSort(ta, tb, dmax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc := incrementalJoin(t, ta, tb, 0, distjoin.Options{MaxDist: dmax})
	if len(within) != len(inc) {
		t.Fatalf("within %d pairs, incremental %d", len(within), len(inc))
	}
	for i := range within {
		if math.Abs(within[i].Dist-inc[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: %g vs %g", i, within[i].Dist, inc[i].Dist)
		}
	}
	for _, p := range within {
		if p.Dist > dmax {
			t.Fatalf("pair beyond range: %g", p.Dist)
		}
	}
}

func TestWithinJoinZeroDistance(t *testing.T) {
	// maxDist 0 degenerates to an intersection join; coincident points
	// intersect.
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3)}
	ta, tb := buildTree(t, pts), buildTree(t, pts)
	within, err := WithinJoinSort(ta, tb, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(within) != 3 {
		t.Fatalf("intersection join found %d pairs, want 3", len(within))
	}
}

func TestWithinJoinUnbalancedTrees(t *testing.T) {
	// Very different cardinalities produce trees of different heights,
	// exercising the unbalanced-descent path.
	a, b := randPts(9, 5), randPts(10, 2000)
	ta, tb := buildTree(t, a), buildTree(t, b)
	if ta.Height() == tb.Height() {
		t.Skip("trees unexpectedly balanced")
	}
	const dmax = 25.0
	within, err := WithinJoinSort(ta, tb, dmax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range a {
		for _, q := range b {
			if geom.Euclidean.Dist(p, q) <= dmax {
				want++
			}
		}
	}
	if len(within) != want {
		t.Fatalf("unbalanced within join: %d, want %d", len(within), want)
	}
}

func TestWithinJoinValidation(t *testing.T) {
	ta := buildTree(t, randPts(11, 5))
	if _, err := WithinJoinSort(ta, ta, -1, Options{}); err == nil {
		t.Fatal("negative maxDist accepted")
	}
}

func TestNNSemiJoinMatchesIncremental(t *testing.T) {
	a, b := randPts(12, 80), randPts(13, 100)
	ta, tb := buildTree(t, a), buildTree(t, b)
	nn, err := NNSemiJoin(ta, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := distjoin.NewSemiJoin(ta, tb, distjoin.FilterGlobalAll, distjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var inc []distjoin.Pair
	for {
		p, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		inc = append(inc, p)
	}
	if len(nn) != len(inc) {
		t.Fatalf("NN semi-join %d pairs, incremental %d", len(nn), len(inc))
	}
	for i := range nn {
		if math.Abs(nn[i].Dist-inc[i].Dist) > 1e-9 {
			t.Fatalf("pair %d: %g vs %g", i, nn[i].Dist, inc[i].Dist)
		}
	}
}

func TestNNSemiJoinEmptyInner(t *testing.T) {
	ta := buildTree(t, randPts(14, 10))
	tb := buildTree(t, nil)
	pairs, err := NNSemiJoin(ta, tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 {
		t.Fatalf("semi-join against empty inner returned %d pairs", len(pairs))
	}
}
