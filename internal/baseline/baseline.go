// Package baseline implements the non-incremental alternatives the paper
// compares its incremental algorithms against:
//
//   - a nested-loop distance join that computes every pairwise distance
//     (§4.1.4),
//   - a spatial join with a within predicate — a Brinkhoff-style
//     synchronized R-tree traversal with plane sweep — followed by sorting
//     (§4.1.4),
//   - a distance semi-join computed by one nearest-neighbour search per
//     outer object followed by sorting (§4.2.3).
package baseline

import (
	"errors"
	"sort"

	"distjoin/internal/distjoin"
	"distjoin/internal/geom"
	"distjoin/internal/inn"
	"distjoin/internal/pager"
	"distjoin/internal/rtree"
	"distjoin/internal/stats"
)

// Options configures the baseline algorithms.
type Options struct {
	// Metric is the distance metric; geom.Euclidean when nil.
	Metric geom.Metric
	// Counters receives distance-calculation accounting. May be nil.
	Counters *stats.Counters
}

func (o *Options) normalize() {
	if o.Metric == nil {
		o.Metric = geom.Euclidean
	}
}

// NestedLoopJoin computes the distance join by brute force: every pairwise
// distance is computed, the pairs are sorted by distance, and the first
// limit pairs are returned (all pairs when limit <= 0). This is the
// alternative of §4.1.4; for non-trivial inputs it computes the full
// Cartesian product before the first pair can be delivered.
func NestedLoopJoin(t1, t2 *rtree.Tree, limit int, opts Options) ([]distjoin.Pair, error) {
	opts.normalize()
	a, err := collect(t1)
	if err != nil {
		return nil, err
	}
	b, err := collect(t2)
	if err != nil {
		return nil, err
	}
	pairs := make([]distjoin.Pair, 0, len(a)*len(b))
	for _, ea := range a {
		for _, eb := range b {
			d := opts.Metric.MinDist(ea.Rect, eb.Rect)
			opts.Counters.AddDistCalc(1)
			pairs = append(pairs, distjoin.Pair{
				Obj1: ea.Obj, Obj2: eb.Obj,
				Rect1: ea.Rect, Rect2: eb.Rect,
				Dist: d,
			})
		}
	}
	sortPairs(pairs)
	if limit > 0 && limit < len(pairs) {
		pairs = pairs[:limit]
	}
	return pairs, nil
}

// NestedLoopScanOnly reproduces the exact experiment of §4.1.4: it computes
// every pairwise distance without storing or sorting the pairs (the paper's
// simplification), reading the inner input fully into memory. It returns
// the number of distance computations performed.
func NestedLoopScanOnly(t1, t2 *rtree.Tree, opts Options) (int64, error) {
	opts.normalize()
	inner, err := collect(t2)
	if err != nil {
		return 0, err
	}
	var count int64
	err = t1.Scan(func(ea rtree.Entry) bool {
		for _, eb := range inner {
			_ = opts.Metric.MinDist(ea.Rect, eb.Rect)
			count++
		}
		return true
	})
	opts.Counters.AddDistCalc(count)
	return count, err
}

// WithinJoinSort computes all pairs within maxDist using a synchronized
// depth-first traversal of the two R-trees with a plane sweep over node
// entries (the classical spatial-join algorithm, generalized from
// intersection to a within predicate as sketched in §2.2.2), then sorts the
// result by distance. Unlike the incremental join, nothing is delivered
// until the whole join has been computed and sorted (§4.1.4).
func WithinJoinSort(t1, t2 *rtree.Tree, maxDist float64, opts Options) ([]distjoin.Pair, error) {
	opts.normalize()
	if maxDist < 0 {
		return nil, errors.New("baseline: maxDist must be non-negative")
	}
	if t1.Dims() != t2.Dims() {
		return nil, errors.New("baseline: dimension mismatch")
	}
	j := &withinJoin{t1: t1, t2: t2, maxDist: maxDist, opts: opts}
	if t1.Len() == 0 || t2.Len() == 0 {
		return nil, nil
	}
	if err := j.visit(t1.RootPage(), t2.RootPage()); err != nil {
		return nil, err
	}
	sortPairs(j.out)
	return j.out, nil
}

type withinJoin struct {
	t1, t2  *rtree.Tree
	maxDist float64
	opts    Options
	out     []distjoin.Pair
}

// visit joins the subtrees rooted at the two pages.
func (j *withinJoin) visit(p1, p2 pager.PageID) error {
	n1, err := j.t1.ReadNode(p1)
	if err != nil {
		return err
	}
	n2, err := j.t2.ReadNode(p2)
	if err != nil {
		return err
	}
	// Unbalanced heights: descend the non-leaf side alone.
	switch {
	case n1.Leaf() && !n2.Leaf():
		for _, e2 := range n2.Entries {
			if err := j.visit(p1, e2.Child); err != nil {
				return err
			}
		}
		return nil
	case !n1.Leaf() && n2.Leaf():
		for _, e1 := range n1.Entries {
			if err := j.visit(e1.Child, p2); err != nil {
				return err
			}
		}
		return nil
	}

	pairs := j.sweepPairs(n1.Entries, n2.Entries)
	if n1.Leaf() { // both leaves
		for _, pr := range pairs {
			d := j.opts.Metric.MinDist(pr[0].Rect, pr[1].Rect)
			j.opts.Counters.AddDistCalc(1)
			if d <= j.maxDist {
				j.out = append(j.out, distjoin.Pair{
					Obj1: pr[0].Obj, Obj2: pr[1].Obj,
					Rect1: pr[0].Rect, Rect2: pr[1].Rect,
					Dist: d,
				})
			}
		}
		return nil
	}
	for _, pr := range pairs {
		d := j.opts.Metric.MinDist(pr[0].Rect, pr[1].Rect)
		j.opts.Counters.AddNodeDistCalc(1)
		if d <= j.maxDist {
			if err := j.visit(pr[0].Child, pr[1].Child); err != nil {
				return err
			}
		}
	}
	return nil
}

// sweepPairs pairs up entries of the two nodes whose axis-0 extents come
// within maxDist of each other — the plane sweep of Figure 4, with the
// sweep window extended by the maximum distance.
func (j *withinJoin) sweepPairs(a, b []rtree.Entry) [][2]rtree.Entry {
	as := append([]rtree.Entry(nil), a...)
	bs := append([]rtree.Entry(nil), b...)
	sort.Slice(as, func(i, k int) bool { return as[i].Rect.Lo[0] < as[k].Rect.Lo[0] })
	sort.Slice(bs, func(i, k int) bool { return bs[i].Rect.Lo[0] < bs[k].Rect.Lo[0] })
	var out [][2]rtree.Entry
	start := 0
	for _, ea := range as {
		for start < len(bs) && bs[start].Rect.Hi[0] < ea.Rect.Lo[0]-j.maxDist {
			start++
		}
		for k := start; k < len(bs); k++ {
			if bs[k].Rect.Lo[0] > ea.Rect.Hi[0]+j.maxDist {
				break
			}
			out = append(out, [2]rtree.Entry{ea, bs[k]})
		}
	}
	return out
}

// NNSemiJoin computes the distance semi-join non-incrementally: one
// nearest-neighbour search in t2 per object of t1, with the resulting array
// sorted by distance at the end (§4.2.3). Only point objects are supported,
// matching the paper's experiments.
func NNSemiJoin(t1, t2 *rtree.Tree, opts Options) ([]distjoin.Pair, error) {
	opts.normalize()
	outer, err := collect(t1)
	if err != nil {
		return nil, err
	}
	pairs := make([]distjoin.Pair, 0, len(outer))
	for _, e := range outer {
		if !e.Rect.IsPoint() {
			return nil, errors.New("baseline: NNSemiJoin requires point objects")
		}
		res, err := inn.Nearest(t2, e.Rect.Lo, 1, inn.Options{
			Metric:   opts.Metric,
			Counters: opts.Counters,
		})
		if err != nil {
			return nil, err
		}
		if len(res) == 0 {
			continue // empty inner input
		}
		pairs = append(pairs, distjoin.Pair{
			Obj1: e.Obj, Obj2: res[0].Obj,
			Rect1: e.Rect, Rect2: res[0].Rect,
			Dist: res[0].Dist,
		})
	}
	sortPairs(pairs)
	return pairs, nil
}

// collect reads every leaf entry of a tree.
func collect(t *rtree.Tree) ([]rtree.Entry, error) {
	out := make([]rtree.Entry, 0, t.Len())
	err := t.Scan(func(e rtree.Entry) bool {
		out = append(out, e)
		return true
	})
	return out, err
}

// sortPairs orders pairs ascending by distance, with ids as tiebreaker for
// determinism.
func sortPairs(pairs []distjoin.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Dist != pairs[j].Dist {
			return pairs[i].Dist < pairs[j].Dist
		}
		if pairs[i].Obj1 != pairs[j].Obj1 {
			return pairs[i].Obj1 < pairs[j].Obj1
		}
		return pairs[i].Obj2 < pairs[j].Obj2
	})
}
