// Package faultstore wraps a pager.Store with deterministic, seedable
// fault injection: transient and permanent read/write errors, corrupted
// (torn) pages, latency spikes, and a simulated crash after a chosen
// number of operations. It exists so that every error path of the
// hybrid-queue / engine stack can be exercised reproducibly in tests and
// experiments.
//
// Faults are drawn from a private rand.Rand, so a given (Config, access
// sequence) pair always produces the same fault schedule. Transient
// errors wrap pager.ErrTransient and are retryable through
// pager.RetryStore; every injected error also wraps ErrInjected so tests
// can tell injected faults from real ones.
package faultstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"distjoin/internal/pager"
)

// ErrInjected is wrapped into every error produced by a Store, so callers
// can distinguish injected faults from genuine storage failures.
var ErrInjected = errors.New("faultstore: injected fault")

// Config selects which faults a Store injects. Probabilities are per
// operation in [0,1]; the *At counters are 1-based operation ordinals of
// the matching kind (0 disables them). The zero Config injects nothing.
type Config struct {
	// Seed initialises the fault schedule's random source.
	Seed int64

	// TransientReadProb / TransientWriteProb inject retryable errors
	// (wrapping pager.ErrTransient) on ReadPage / WritePage.
	TransientReadProb  float64
	TransientWriteProb float64

	// PermanentReadProb / PermanentWriteProb inject non-retryable errors.
	PermanentReadProb  float64
	PermanentWriteProb float64

	// CorruptReadProb flips bytes in the buffer returned by ReadPage
	// without reporting an error — a torn or bit-rotted page that only a
	// checksum can catch.
	CorruptReadProb float64

	// FailReadAt / FailWriteAt make the n-th read / write (1-based) fail
	// permanently. CorruptReadAt corrupts the n-th read instead.
	FailReadAt    int
	FailWriteAt   int
	CorruptReadAt int

	// CrashAfterOps simulates the store dying: once the total operation
	// count (reads + writes + allocates + frees) exceeds this value,
	// every call returns pager.ErrClosed. 0 disables.
	CrashAfterOps int

	// SlowProb delays an operation by SlowLatency before it proceeds.
	SlowProb    float64
	SlowLatency time.Duration
}

// Stats counts what a Store actually injected, for assertions in tests.
type Stats struct {
	Ops             int64
	Reads           int64
	Writes          int64
	TransientErrors int64
	PermanentErrors int64
	CorruptedReads  int64
	SlowOps         int64
	Crashed         bool
}

// Store implements pager.Store over an inner store, injecting faults per
// its Config. All methods are safe for concurrent use; the fault schedule
// is serialized under an internal mutex so it stays deterministic for a
// deterministic access sequence.
type Store struct {
	inner pager.Store
	cfg   Config

	mu      sync.Mutex
	rng     *rand.Rand
	armed   bool
	stats   Stats
	crashed bool
}

// New wraps inner with fault injection per cfg. The store starts armed;
// use SetArmed(false) to build fixtures fault-free first.
func New(inner pager.Store, cfg Config) *Store {
	return &Store{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		armed: true,
	}
}

// SetArmed toggles fault injection. While disarmed the store is a
// transparent pass-through and consumes no randomness, so fixtures can be
// built deterministically before the faults start.
func (s *Store) SetArmed(armed bool) {
	s.mu.Lock()
	s.armed = armed
	s.mu.Unlock()
}

// Stats returns a snapshot of the injected-fault counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Inner returns the wrapped store.
func (s *Store) Inner() pager.Store { return s.inner }

// fault is the per-operation injection decision, taken under s.mu so the
// random sequence is deterministic. It returns an error to inject, and
// whether to corrupt the read buffer afterwards.
func (s *Store) fault(read bool, id pager.PageID) (err error, corrupt bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed {
		return nil, false
	}
	s.stats.Ops++
	if s.crashed {
		return fmt.Errorf("%w: %w", ErrInjected, pager.ErrClosed), false
	}
	if s.cfg.CrashAfterOps > 0 && s.stats.Ops > int64(s.cfg.CrashAfterOps) {
		s.crashed = true
		s.stats.Crashed = true
		return fmt.Errorf("%w: store crashed after %d operations: %w",
			ErrInjected, s.cfg.CrashAfterOps, pager.ErrClosed), false
	}
	if s.cfg.SlowProb > 0 && s.rng.Float64() < s.cfg.SlowProb {
		s.stats.SlowOps++
		if s.cfg.SlowLatency > 0 {
			time.Sleep(s.cfg.SlowLatency)
		}
	}
	op, transientProb, permanentProb, failAt := "write", s.cfg.TransientWriteProb, s.cfg.PermanentWriteProb, s.cfg.FailWriteAt
	var n int64
	if read {
		s.stats.Reads++
		n = s.stats.Reads
		op, transientProb, permanentProb, failAt = "read", s.cfg.TransientReadProb, s.cfg.PermanentReadProb, s.cfg.FailReadAt
	} else {
		s.stats.Writes++
		n = s.stats.Writes
	}
	if failAt > 0 && n == int64(failAt) {
		s.stats.PermanentErrors++
		return fmt.Errorf("%w: permanent %s error on page %d (%s #%d)", ErrInjected, op, id, op, n), false
	}
	if permanentProb > 0 && s.rng.Float64() < permanentProb {
		s.stats.PermanentErrors++
		return fmt.Errorf("%w: permanent %s error on page %d", ErrInjected, op, id), false
	}
	if transientProb > 0 && s.rng.Float64() < transientProb {
		s.stats.TransientErrors++
		return fmt.Errorf("%w: %w on %s of page %d", ErrInjected, pager.ErrTransient, op, id), false
	}
	if read {
		if s.cfg.CorruptReadAt > 0 && n == int64(s.cfg.CorruptReadAt) {
			corrupt = true
		} else if s.cfg.CorruptReadProb > 0 && s.rng.Float64() < s.cfg.CorruptReadProb {
			corrupt = true
		}
		if corrupt {
			s.stats.CorruptedReads++
		}
	}
	return nil, corrupt
}

// corruptBuf flips a few bytes of buf, deterministically per schedule.
func (s *Store) corruptBuf(buf []byte) {
	if len(buf) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	flips := 1 + s.rng.Intn(4)
	for i := 0; i < flips; i++ {
		pos := s.rng.Intn(len(buf))
		buf[pos] ^= byte(1 + s.rng.Intn(255))
	}
}

// bookkeep is the fault gate for allocate/free, which only participate in
// the crash countdown (they are metadata operations, not page I/O).
func (s *Store) bookkeep() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.armed {
		return nil
	}
	s.stats.Ops++
	if s.crashed {
		return fmt.Errorf("%w: %w", ErrInjected, pager.ErrClosed)
	}
	if s.cfg.CrashAfterOps > 0 && s.stats.Ops > int64(s.cfg.CrashAfterOps) {
		s.crashed = true
		s.stats.Crashed = true
		return fmt.Errorf("%w: store crashed after %d operations: %w",
			ErrInjected, s.cfg.CrashAfterOps, pager.ErrClosed)
	}
	return nil
}

func (s *Store) PageSize() int { return s.inner.PageSize() }

func (s *Store) Allocate() (pager.PageID, error) {
	if err := s.bookkeep(); err != nil {
		return 0, err
	}
	return s.inner.Allocate()
}

func (s *Store) Free(id pager.PageID) error {
	if err := s.bookkeep(); err != nil {
		return err
	}
	return s.inner.Free(id)
}

func (s *Store) ReadPage(id pager.PageID, buf []byte) error {
	err, corrupt := s.fault(true, id)
	if err != nil {
		return err
	}
	if err := s.inner.ReadPage(id, buf); err != nil {
		return err
	}
	if corrupt {
		s.corruptBuf(buf)
	}
	return nil
}

func (s *Store) WritePage(id pager.PageID, data []byte) error {
	err, _ := s.fault(false, id)
	if err != nil {
		return err
	}
	return s.inner.WritePage(id, data)
}

func (s *Store) NumAllocated() int { return s.inner.NumAllocated() }

func (s *Store) Close() error { return s.inner.Close() }
