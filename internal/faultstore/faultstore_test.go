package faultstore

import (
	"bytes"
	"errors"
	"testing"

	"distjoin/internal/pager"
)

func newStore(t *testing.T, cfg Config) (*Store, pager.PageID) {
	t.Helper()
	mem, err := pager.NewMemStore(64)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mem.Close() })
	fs := New(mem, cfg)
	fs.SetArmed(false)
	id, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WritePage(id, bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	fs.SetArmed(true)
	return fs, id
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, TransientReadProb: 0.5}
	run := func() []bool {
		fs, id := newStore(t, cfg)
		var outcomes []bool
		buf := make([]byte, 64)
		for i := 0; i < 50; i++ {
			outcomes = append(outcomes, fs.ReadPage(id, buf) == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	anyFault := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
		if !a[i] {
			anyFault = true
		}
	}
	if !anyFault {
		t.Fatal("p=0.5 over 50 reads injected nothing")
	}
}

func TestTransientErrorsAreRetryable(t *testing.T) {
	fs, id := newStore(t, Config{Seed: 1, TransientReadProb: 1})
	err := fs.ReadPage(id, make([]byte, 64))
	if !pager.IsTransient(err) {
		t.Fatalf("transient fault not classified transient: %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected fault does not wrap ErrInjected: %v", err)
	}
}

func TestPermanentErrorsAreNotRetryable(t *testing.T) {
	fs, id := newStore(t, Config{Seed: 1, PermanentWriteProb: 1})
	err := fs.WritePage(id, make([]byte, 64))
	if err == nil || pager.IsTransient(err) {
		t.Fatalf("want non-transient error, got %v", err)
	}
}

func TestFailReadAtNth(t *testing.T) {
	fs, id := newStore(t, Config{FailReadAt: 3})
	buf := make([]byte, 64)
	for i := 1; i <= 5; i++ {
		err := fs.ReadPage(id, buf)
		if (i == 3) != (err != nil) {
			t.Fatalf("read %d: err=%v, want failure exactly at read 3", i, err)
		}
	}
}

func TestCorruptReadFlipsBytes(t *testing.T) {
	fs, id := newStore(t, Config{Seed: 9, CorruptReadAt: 1})
	buf := make([]byte, 64)
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, bytes.Repeat([]byte{7}, 64)) {
		t.Fatal("corrupt read returned pristine bytes")
	}
	if got := fs.Stats().CorruptedReads; got != 1 {
		t.Fatalf("CorruptedReads=%d, want 1", got)
	}
	// The page itself is intact: the next read sees the real bytes.
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{7}, 64)) {
		t.Fatal("corruption leaked into the underlying page")
	}
}

func TestCrashAfterOps(t *testing.T) {
	fs, id := newStore(t, Config{CrashAfterOps: 2})
	buf := make([]byte, 64)
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatalf("op 2: %v", err)
	}
	for i := 0; i < 3; i++ {
		err := fs.ReadPage(id, buf)
		if !errors.Is(err, pager.ErrClosed) {
			t.Fatalf("post-crash op: %v, want ErrClosed", err)
		}
	}
	if _, err := fs.Allocate(); !errors.Is(err, pager.ErrClosed) {
		t.Fatal("allocate should fail after crash")
	}
	if !fs.Stats().Crashed {
		t.Fatal("Stats().Crashed not set")
	}
}

func TestDisarmedIsTransparent(t *testing.T) {
	fs, id := newStore(t, Config{TransientReadProb: 1, CrashAfterOps: 1})
	fs.SetArmed(false)
	buf := make([]byte, 64)
	for i := 0; i < 10; i++ {
		if err := fs.ReadPage(id, buf); err != nil {
			t.Fatalf("disarmed read failed: %v", err)
		}
	}
	if fs.Stats().Ops != 0 {
		t.Fatal("disarmed ops were counted")
	}
}
