// Package quadtree implements a bucket PR (point-region) quadtree — the
// kind of unbalanced, space-partitioning hierarchy the paper contrasts with
// the R-tree (§2.2.2, references [26, 27]). Space is recursively split into
// 2^d congruent hyper-quadrants; leaves hold up to a bucket's worth of
// points. Each point lives in exactly one leaf, satisfying the join
// engine's assumptions, while leaves sit at varying depths — exercising the
// algorithm's handling of unbalanced structures.
//
// The tree is an in-memory structure (the paper treats quadtrees as an
// alternative decomposition, not as the disk-resident index of its
// experiments); node visits are still counted so traversal costs remain
// observable.
package quadtree

import (
	"errors"
	"fmt"

	"distjoin/internal/geom"
	"distjoin/internal/stats"
)

// Config describes a quadtree.
type Config struct {
	// Bounds is the world extent; every inserted point must lie inside.
	// Required.
	Bounds geom.Rect
	// BucketSize is the leaf capacity before a split (default 8).
	BucketSize int
	// MaxDepth caps subdivision; leaves at the cap may exceed BucketSize
	// (coincident points make unlimited splitting futile). Default 24.
	MaxDepth int
	// Counters receives node-visit accounting. May be nil.
	Counters *stats.Counters
}

// Point is one indexed point object.
type Point struct {
	P  geom.Point
	ID uint64
}

// node is a quadtree node: a leaf with points, or an internal node with up
// to 2^d children (empty quadrants are not materialized).
type node struct {
	rect     geom.Rect
	depth    int
	leaf     bool
	points   []Point // leaf payload
	children []int32 // child node ids; -1 for empty quadrants
}

// Tree is a bucket PR quadtree. Not safe for concurrent use.
type Tree struct {
	cfg   Config
	dims  int
	nodes []*node // index = node id; 0 is the root
	size  int
}

// New creates an empty quadtree over the given bounds.
func New(cfg Config) (*Tree, error) {
	if !cfg.Bounds.Valid() {
		return nil, errors.New("quadtree: valid Bounds required")
	}
	if cfg.BucketSize == 0 {
		cfg.BucketSize = 8
	}
	if cfg.BucketSize < 1 {
		return nil, fmt.Errorf("quadtree: BucketSize %d < 1", cfg.BucketSize)
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 24
	}
	if cfg.MaxDepth < 1 || cfg.MaxDepth > 100 {
		return nil, fmt.Errorf("quadtree: MaxDepth %d out of range [1, 100]", cfg.MaxDepth)
	}
	dims := cfg.Bounds.Dim()
	if dims > 8 {
		return nil, fmt.Errorf("quadtree: %d dimensions would mean %d children per node", dims, 1<<dims)
	}
	t := &Tree{cfg: cfg, dims: dims}
	t.nodes = append(t.nodes, &node{rect: cfg.Bounds.Clone(), depth: 0, leaf: true})
	return t, nil
}

// Dims returns the dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Bounds returns the world extent.
func (t *Tree) Bounds() geom.Rect { return t.cfg.Bounds }

// MaxDepth returns the configured subdivision cap.
func (t *Tree) MaxDepth() int { return t.cfg.MaxDepth }

// MaxFanout returns the expected maximum node fan-out: internal nodes hold
// 2^dims children, leaves BucketSize points. Leaves at the depth cap may
// exceed BucketSize; callers use the value as a buffer pre-sizing hint, not
// a bound.
func (t *Tree) MaxFanout() int {
	f := 1 << t.dims
	if t.cfg.BucketSize > f {
		f = t.cfg.BucketSize
	}
	return f
}

// Insert adds a point. Points outside the world bounds are rejected.
func (t *Tree) Insert(p geom.Point, id uint64) error {
	if p.Dim() != t.dims {
		return fmt.Errorf("quadtree: point dimension %d, tree dimension %d", p.Dim(), t.dims)
	}
	if !t.cfg.Bounds.ContainsPoint(p) {
		return fmt.Errorf("quadtree: point %v outside bounds %v", p, t.cfg.Bounds)
	}
	cur := int32(0)
	for {
		n := t.nodes[cur]
		if n.leaf {
			n.points = append(n.points, Point{P: p.Clone(), ID: id})
			t.size++
			if len(n.points) > t.cfg.BucketSize && n.depth < t.cfg.MaxDepth {
				t.split(cur)
			}
			return nil
		}
		cur = t.childFor(cur, p)
	}
}

// childFor returns (materializing if needed) the child quadrant of internal
// node id containing p.
func (t *Tree) childFor(id int32, p geom.Point) int32 {
	n := t.nodes[id]
	center := n.rect.Center()
	q := 0
	for i := 0; i < t.dims; i++ {
		if p[i] >= center[i] {
			q |= 1 << i
		}
	}
	if n.children[q] >= 0 {
		return n.children[q]
	}
	child := &node{rect: t.quadrantRect(n.rect, center, q), depth: n.depth + 1, leaf: true}
	t.nodes = append(t.nodes, child)
	cid := int32(len(t.nodes) - 1)
	n.children[q] = cid
	return cid
}

// quadrantRect computes the rectangle of quadrant q of a node rect split at
// center. Bit i of q selects the upper half along dimension i.
func (t *Tree) quadrantRect(r geom.Rect, center geom.Point, q int) geom.Rect {
	lo := r.Lo.Clone()
	hi := r.Hi.Clone()
	for i := 0; i < t.dims; i++ {
		if q&(1<<i) != 0 {
			lo[i] = center[i]
		} else {
			hi[i] = center[i]
		}
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// split converts a leaf into an internal node, redistributing its points.
func (t *Tree) split(id int32) {
	n := t.nodes[id]
	pts := n.points
	n.leaf = false
	n.points = nil
	n.children = make([]int32, 1<<t.dims)
	for i := range n.children {
		n.children[i] = -1
	}
	for _, pt := range pts {
		cid := t.childFor(id, pt.P)
		child := t.nodes[cid]
		child.points = append(child.points, pt)
		// Recursive overflow is handled lazily: if every point landed in
		// one quadrant, split that child too (subject to the depth cap).
		if len(child.points) > t.cfg.BucketSize && child.depth < t.cfg.MaxDepth {
			t.split(cid)
		}
	}
}

// Delete removes the point with the given coordinates and id. It returns
// false when not present. Emptied leaves are left in place (quadtrees
// tolerate sparse nodes; a condensing pass is unnecessary for correctness).
func (t *Tree) Delete(p geom.Point, id uint64) bool {
	if p.Dim() != t.dims || !t.cfg.Bounds.ContainsPoint(p) {
		return false
	}
	cur := int32(0)
	for {
		n := t.nodes[cur]
		if n.leaf {
			for i, pt := range n.points {
				if pt.ID == id && pt.P.Equal(p) {
					n.points = append(n.points[:i], n.points[i+1:]...)
					t.size--
					return true
				}
			}
			return false
		}
		center := n.rect.Center()
		q := 0
		for i := 0; i < t.dims; i++ {
			if p[i] >= center[i] {
				q |= 1 << i
			}
		}
		if n.children[q] < 0 {
			return false
		}
		cur = n.children[q]
	}
}

// Search invokes fn for every point inside query; return false to stop.
func (t *Tree) Search(query geom.Rect, fn func(Point) bool) {
	t.searchNode(0, query, fn)
}

func (t *Tree) searchNode(id int32, query geom.Rect, fn func(Point) bool) bool {
	n := t.nodes[id]
	t.cfg.Counters.AddNodeRead(1)
	if !n.rect.Intersects(query) {
		return true
	}
	if n.leaf {
		for _, pt := range n.points {
			if query.ContainsPoint(pt.P) {
				if !fn(pt) {
					return false
				}
			}
		}
		return true
	}
	for _, cid := range n.children {
		if cid >= 0 {
			if !t.searchNode(cid, query, fn) {
				return false
			}
		}
	}
	return true
}

// NumNodes returns the number of materialized nodes (diagnostic).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// ChildRef is a reference to a node: its id, level and region. Levels
// number upward from the deepest possible leaf (level = MaxDepth − depth),
// so that deeper nodes have smaller levels as traversal algorithms expect.
type ChildRef struct {
	ID    int32
	Level int
	Rect  geom.Rect
}

// NodeView is the read-only traversal view of a node, used by the join
// engine's SpatialIndex adapter.
type NodeView struct {
	Leaf     bool
	Level    int
	Rect     geom.Rect
	Points   []Point    // leaf payload
	Children []ChildRef // materialized quadrants of an internal node
}

// NodeRef returns a reference to the node with the given id.
func (t *Tree) NodeRef(id int32) (ChildRef, error) {
	if id < 0 || int(id) >= len(t.nodes) {
		return ChildRef{}, fmt.Errorf("quadtree: node id %d out of range", id)
	}
	n := t.nodes[id]
	return ChildRef{ID: id, Level: t.cfg.MaxDepth - n.depth, Rect: n.rect}, nil
}

// ReadNode decodes the node with the given id for traversal. Each call is
// counted as a node read.
func (t *Tree) ReadNode(id int32) (*NodeView, error) {
	if id < 0 || int(id) >= len(t.nodes) {
		return nil, fmt.Errorf("quadtree: node id %d out of range", id)
	}
	t.cfg.Counters.AddNodeRead(1)
	n := t.nodes[id]
	v := &NodeView{Leaf: n.leaf, Level: t.cfg.MaxDepth - n.depth, Rect: n.rect}
	if n.leaf {
		v.Points = n.points
		return v, nil
	}
	for _, cid := range n.children {
		if cid < 0 {
			continue
		}
		c := t.nodes[cid]
		v.Children = append(v.Children, ChildRef{
			ID:    cid,
			Level: t.cfg.MaxDepth - c.depth,
			Rect:  c.rect,
		})
	}
	return v, nil
}
