package quadtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distjoin/internal/geom"
	"distjoin/internal/stats"
)

func worldCfg() Config {
	return Config{Bounds: geom.R(geom.Pt(0, 0), geom.Pt(1000, 1000)), BucketSize: 4, MaxDepth: 16}
}

func mustNew(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randPts(seed int64, n int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing bounds accepted")
	}
	if _, err := New(Config{Bounds: geom.R(geom.Pt(0, 0), geom.Pt(1, 1)), BucketSize: -1}); err == nil {
		t.Error("negative bucket accepted")
	}
	if _, err := New(Config{Bounds: geom.R(geom.Pt(0, 0), geom.Pt(1, 1)), MaxDepth: 500}); err == nil {
		t.Error("huge MaxDepth accepted")
	}
	bounds9 := geom.Rect{Lo: make(geom.Point, 9), Hi: make(geom.Point, 9)}
	for i := range bounds9.Hi {
		bounds9.Hi[i] = 1
	}
	if _, err := New(Config{Bounds: bounds9}); err == nil {
		t.Error("9 dimensions accepted")
	}
}

func TestInsertAndLen(t *testing.T) {
	tr := mustNew(t, worldCfg())
	pts := randPts(1, 500)
	for i, p := range pts {
		if err := tr.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.NumNodes() < 10 {
		t.Fatalf("tree did not split: %d nodes", tr.NumNodes())
	}
}

func TestInsertRejectsOutside(t *testing.T) {
	tr := mustNew(t, worldCfg())
	if err := tr.Insert(geom.Pt(-1, 5), 1); err == nil {
		t.Error("outside point accepted")
	}
	if err := tr.Insert(geom.Pt(1, 2, 3), 1); err == nil {
		t.Error("wrong dims accepted")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	tr := mustNew(t, worldCfg())
	pts := randPts(2, 1000)
	for i, p := range pts {
		tr.Insert(p, uint64(i))
	}
	query := geom.R(geom.Pt(200, 300), geom.Pt(500, 800))
	want := map[uint64]bool{}
	for i, p := range pts {
		if query.ContainsPoint(p) {
			want[uint64(i)] = true
		}
	}
	got := map[uint64]bool{}
	tr.Search(query, func(pt Point) bool { got[pt.ID] = true; return true })
	if len(got) != len(want) {
		t.Fatalf("found %d, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing %d", id)
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := mustNew(t, worldCfg())
	for i, p := range randPts(3, 200) {
		tr.Insert(p, uint64(i))
	}
	calls := 0
	tr.Search(tr.Bounds(), func(Point) bool { calls++; return calls < 3 })
	if calls != 3 {
		t.Fatalf("callback ran %d times", calls)
	}
}

func TestDelete(t *testing.T) {
	tr := mustNew(t, worldCfg())
	pts := randPts(4, 300)
	for i, p := range pts {
		tr.Insert(p, uint64(i))
	}
	for i := 0; i < 150; i++ {
		if !tr.Delete(pts[i], uint64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 150 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Delete(pts[0], 0) {
		t.Fatal("double delete succeeded")
	}
	if tr.Delete(geom.Pt(1, 2, 3), 1) {
		t.Fatal("wrong-dim delete succeeded")
	}
	// Remaining points still findable.
	found := 0
	tr.Search(tr.Bounds(), func(Point) bool { found++; return true })
	if found != 150 {
		t.Fatalf("found %d after deletes", found)
	}
}

func TestCoincidentPointsDepthCap(t *testing.T) {
	cfg := worldCfg()
	cfg.MaxDepth = 4
	tr := mustNew(t, cfg)
	// Coincident points cannot be separated: the depth cap must stop
	// subdivision and store them all in one deep leaf.
	for i := 0; i < 100; i++ {
		if err := tr.Insert(geom.Pt(123, 456), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	count := 0
	tr.Search(geom.R(geom.Pt(123, 456), geom.Pt(123, 456)), func(Point) bool { count++; return true })
	if count != 100 {
		t.Fatalf("found %d coincident points", count)
	}
}

func TestNodeReadCounting(t *testing.T) {
	c := &stats.Counters{}
	cfg := worldCfg()
	cfg.Counters = c
	tr := mustNew(t, cfg)
	for i, p := range randPts(5, 200) {
		tr.Insert(p, uint64(i))
	}
	tr.Search(tr.Bounds(), func(Point) bool { return true })
	if c.NodeReads == 0 {
		t.Fatal("search counted no node reads")
	}
}

func TestReadNodeTraversal(t *testing.T) {
	tr := mustNew(t, worldCfg())
	pts := randPts(6, 400)
	for i, p := range pts {
		tr.Insert(p, uint64(i))
	}
	root, err := tr.NodeRef(0)
	if err != nil {
		t.Fatal(err)
	}
	if root.Level != tr.MaxDepth() {
		t.Fatalf("root level %d, want %d", root.Level, tr.MaxDepth())
	}
	// Walk the whole tree via ReadNode; count objects and check levels and
	// region containment.
	var walk func(id int32, level int, region geom.Rect) int
	walk = func(id int32, level int, region geom.Rect) int {
		n, err := tr.ReadNode(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.Level != level {
			t.Fatalf("node %d level %d, want %d", id, n.Level, level)
		}
		if !region.Contains(n.Rect) {
			t.Fatalf("node %d region escapes parent", id)
		}
		if n.Leaf {
			for _, p := range n.Points {
				if !n.Rect.ContainsPoint(p.P) {
					t.Fatalf("point %v outside its leaf region %v", p.P, n.Rect)
				}
			}
			return len(n.Points)
		}
		total := 0
		for _, c := range n.Children {
			if c.Level != level-1 {
				t.Fatalf("child level %d under level %d", c.Level, level)
			}
			total += walk(c.ID, c.Level, n.Rect)
		}
		return total
	}
	if got := walk(0, root.Level, tr.Bounds()); got != 400 {
		t.Fatalf("walk found %d objects", got)
	}
	if _, err := tr.ReadNode(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := tr.ReadNode(int32(tr.NumNodes())); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestThreeDimensional(t *testing.T) {
	cfg := Config{Bounds: geom.R(geom.Pt(0, 0, 0), geom.Pt(100, 100, 100))}
	tr := mustNew(t, cfg)
	rnd := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Pt(rnd.Float64()*100, rnd.Float64()*100, rnd.Float64()*100)
		if err := tr.Insert(pts[i], uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	query := geom.R(geom.Pt(20, 20, 20), geom.Pt(70, 70, 70))
	want := 0
	for _, p := range pts {
		if query.ContainsPoint(p) {
			want++
		}
	}
	got := 0
	tr.Search(query, func(Point) bool { got++; return true })
	if got != want {
		t.Fatalf("3-D search: %d, want %d", got, want)
	}
}

// Property: search over random data and queries always matches brute force,
// under random bucket sizes and depth caps.
func TestPropSearchCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		cfg := Config{
			Bounds:     geom.R(geom.Pt(0, 0), geom.Pt(100, 100)),
			BucketSize: 1 + rnd.Intn(16),
			MaxDepth:   2 + rnd.Intn(20),
		}
		tr, err := New(cfg)
		if err != nil {
			return false
		}
		n := 50 + rnd.Intn(400)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rnd.Float64()*100, rnd.Float64()*100)
			if err := tr.Insert(pts[i], uint64(i)); err != nil {
				return false
			}
		}
		for q := 0; q < 5; q++ {
			x1, y1 := rnd.Float64()*100, rnd.Float64()*100
			x2 := x1 + rnd.Float64()*(100-x1)
			y2 := y1 + rnd.Float64()*(100-y1)
			query := geom.R(geom.Pt(x1, y1), geom.Pt(x2, y2))
			want := 0
			for _, p := range pts {
				if query.ContainsPoint(p) {
					want++
				}
			}
			got := 0
			tr.Search(query, func(Point) bool { got++; return true })
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
