package bench

import (
	"path/filepath"
	"testing"

	"distjoin/internal/profile"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"", "smoke", "small", "full"} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestMatrixShape(t *testing.T) {
	ws := Matrix(Smoke)
	if len(ws) < 5 {
		t.Fatalf("matrix has %d workloads, want >= 5", len(ws))
	}
	seen := map[string]bool{}
	var det, nondet, semi int
	for _, w := range ws {
		if w.Name == "" || w.Pairs <= 0 {
			t.Errorf("bad workload %+v", w)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Deterministic {
			det++
		} else {
			nondet++
		}
		if w.Semi {
			semi++
		}
	}
	if det == 0 || nondet == 0 || semi == 0 {
		t.Errorf("matrix lacks variety: det=%d nondet=%d semi=%d", det, nondet, semi)
	}
}

// TestRunSmoke is the end-to-end acceptance check: the smoke matrix runs,
// validates against the schema, covers >= MinCoverage of wall per
// sequential workload, round-trips through a file, and self-compares
// clean, while an injected node-I/O regression trips the gate.
func TestRunSmoke(t *testing.T) {
	traj, err := Run(Smoke)
	if err != nil {
		t.Fatal(err)
	}
	if traj.Scale != "smoke" || traj.Tool != "benchrun" {
		t.Errorf("trajectory header %q/%q", traj.Tool, traj.Scale)
	}
	isServer := map[string]bool{}
	for _, w := range Matrix(Smoke) {
		isServer[w.Name] = w.Server
	}
	for _, w := range traj.Workloads {
		p := w.Profile
		// Server workloads spend wall time in HTTP transport the span
		// accounting cannot see, so the coverage bar applies only in-process.
		if w.Deterministic && !isServer[w.Name] && p.Coverage < MinCoverage {
			t.Errorf("workload %q: coverage %.2f < %.2f", w.Name, p.Coverage, MinCoverage)
		}
		if len(p.TimeToKth) == 0 {
			t.Errorf("workload %q: no time-to-kth marks", w.Name)
		}
		if p.Delay.InterPair.Count == 0 {
			t.Errorf("workload %q: no inter-pair delay observations", w.Name)
		}
		if w.Name == "table1-even-hybrid" && len(p.Explain) == 0 {
			t.Error("table1-even-hybrid: no explain rows")
		}
		if w.Name == "table1-even-hybrid" && p.Counters.QueueDiskPairs == 0 {
			t.Error("table1-even-hybrid: hybrid queue never spilled; lower Smoke.HybridDT")
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := traj.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := profile.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workloads) != len(traj.Workloads) {
		t.Fatalf("round trip lost workloads: %d != %d", len(back.Workloads), len(traj.Workloads))
	}

	if res := profile.Compare(traj, back, profile.CompareOptions{}); !res.OK() {
		t.Errorf("self-compare regressed: %v", res.Regressions)
	}

	// Inject a >= 10% node-I/O regression into the first deterministic
	// workload; the gate must trip.
	for i := range back.Workloads {
		if !back.Workloads[i].Deterministic {
			continue
		}
		c := &back.Workloads[i].Profile.Counters
		c.NodeIO = c.NodeIO + c.NodeIO/10 + 3
		break
	}
	if res := profile.Compare(traj, back, profile.CompareOptions{}); res.OK() {
		t.Error("injected node-I/O regression not detected")
	}
}

// TestServerWorkloadMatchesInProcess is the cursor-layer-invariance check:
// draining the same join through the HTTP cursor service must leave the
// engine's hardware-independent work counters exactly equal to the
// in-process drain — the service may add transport time, never work.
func TestServerWorkloadMatchesInProcess(t *testing.T) {
	d, err := Load(Smoke)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var serverW, inprocW *Workload
	for _, w := range Matrix(Smoke) {
		w := w
		switch w.Name {
		case "server-cursor-hybrid":
			serverW = &w
		case "table1-even-hybrid":
			inprocW = &w
		}
	}
	if serverW == nil || inprocW == nil {
		t.Fatal("matrix lost its server or table1 leg")
	}
	// The server leg sets MaxPairs through the request; give the in-process
	// leg the same bound so the D_max estimator engages identically.
	ref := *inprocW
	ref.Explain = false
	ref.Opts.MaxPairs = ref.Pairs

	got, err := d.RunWorkload(*serverW)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.RunWorkload(ref)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters != want.Counters {
		t.Fatalf("cursor service changed engine work:\nserver     %+v\nin-process %+v",
			got.Counters, want.Counters)
	}
}
