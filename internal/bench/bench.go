// Package bench runs the canonical benchmark workload matrix and records
// the result as a benchmark-trajectory point (see internal/profile): one
// query profile per workload, plus the environment fingerprint, in the
// schema-versioned BENCH_<date>.json format that cmd/benchrun writes and
// compares.
//
// The matrix deliberately exercises the public API end to end — the same
// Profiler a library user would attach — so a trajectory point also proves
// the instrumentation itself: Run fails when a sequential workload's phase
// attribution explains less than MinCoverage of its wall time.
package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"distjoin"
	"distjoin/internal/datagen"
	"distjoin/internal/profile"
	"distjoin/internal/server"
)

// MinCoverage is the minimum fraction of a sequential workload's wall time
// the span accounting must explain. Falling below it means time is leaking
// out of the instrumented phases — an instrumentation bug, not a slow run.
const MinCoverage = 0.9

// Scale sizes a benchmark run. Smoke is the CI gate; Small mirrors the
// experiments package's default; Full uses the paper's cardinalities.
type Scale struct {
	Name   string
	WaterN int
	RoadsN int
	// Pairs is the result-pair target of the join workloads (the semi-join
	// workloads are additionally capped by the outer cardinality).
	Pairs int
	// HybridDT is the hybrid queue's tier threshold in world units.
	HybridDT float64
	// Seed makes data generation deterministic.
	Seed int64
}

// Smoke is small enough for a CI job yet large enough that per-run setup
// noise stays well under the MinCoverage slack.
var Smoke = Scale{Name: "smoke", WaterN: 800, RoadsN: 1_600, Pairs: 400, HybridDT: 120, Seed: 1998}

// Small matches the experiments package's default scale.
var Small = Scale{Name: "small", WaterN: 4_000, RoadsN: 20_000, Pairs: 10_000, HybridDT: 120, Seed: 1998}

// Full uses the paper's dataset cardinalities.
var Full = Scale{Name: "full", WaterN: datagen.PaperWaterSize, RoadsN: datagen.PaperRoadsSize, Pairs: 100_000, HybridDT: 40, Seed: 1998}

// ScaleByName returns the named scale.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "smoke", "":
		return Smoke, nil
	case "small":
		return Small, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (want smoke, small or full)", name)
}

// Workload is one cell of the canonical matrix.
type Workload struct {
	// Name is the stable identity Compare matches on; renaming a workload
	// silently drops its regression gate, so don't.
	Name string
	// Deterministic marks workloads whose work counters reproduce
	// run-to-run. Parallel runs with a result bound cancel workers
	// mid-flight and so do a nondeterministic amount of speculative work.
	Deterministic bool
	// Semi selects the distance semi-join (FilterLocal) instead of the
	// distance join.
	Semi bool
	// Server drains the workload through the HTTP cursor service instead
	// of the in-process iterator: one resumable cursor, pulled in fixed
	// batches over loopback. Engine work counters stay deterministic and
	// gate as usual; phase coverage is not checked — the wall time spent
	// in HTTP transport is invisible to the engine's span accounting by
	// design.
	Server bool
	// Pairs bounds the drain loop.
	Pairs int
	// Explain attaches cost-model predicted-vs-actual rows to the profile.
	Explain bool
	// Opts is the join configuration (counters/obs/profile are overwritten
	// by the harness's Profiler).
	Opts distjoin.Options
}

// Matrix returns the canonical workload matrix for a scale: the Table-1
// default (Even traversal, hybrid queue), its memory-queue and
// Basic-traversal ablations, a parallel leg, and the semi-join.
func Matrix(s Scale) []Workload {
	hybrid := distjoin.Options{
		Queue:          distjoin.QueueHybrid,
		HybridDT:       s.HybridDT,
		HybridInMemory: true,
	}
	semiPairs := s.Pairs
	if s.WaterN < semiPairs {
		semiPairs = s.WaterN
	}
	return []Workload{
		{Name: "table1-even-hybrid", Deterministic: true, Pairs: s.Pairs, Explain: true, Opts: hybrid},
		{Name: "table1-even-memory", Deterministic: true, Pairs: s.Pairs,
			Opts: distjoin.Options{Queue: distjoin.QueueMemory}},
		{Name: "table1-basic-hybrid", Deterministic: true, Pairs: s.Pairs, Opts: func() distjoin.Options {
			o := hybrid
			o.Traversal = distjoin.TraverseBasic
			return o
		}()},
		{Name: "parallel-2-memory", Deterministic: false, Pairs: s.Pairs,
			Opts: distjoin.Options{Parallelism: 2, MaxPairs: s.Pairs}},
		// Simultaneous traversal with a result bound: the estimator tightens
		// D_max, which switches expandBoth onto the plane-sweep — the batched
		// kernel hot path. Its trajectory row records the sweep's
		// batch_pruned tally alongside the usual work counters.
		{Name: "kernel-sweep-hybrid", Deterministic: true, Pairs: s.Pairs, Opts: func() distjoin.Options {
			o := hybrid
			o.Traversal = distjoin.TraverseSimultaneous
			o.MaxPairs = s.Pairs
			return o
		}()},
		{Name: "semi-local-hybrid", Deterministic: true, Semi: true, Pairs: semiPairs, Opts: hybrid},
		// The network leg: the same hybrid join drained through a resumable
		// server cursor in fixed HTTP batches. Its counters must match the
		// in-process legs (the cursor layer may not change what the engine
		// does); its wall-clock rows additionally track per-pull service
		// overhead across trajectory points.
		{Name: "server-cursor-hybrid", Deterministic: true, Server: true, Pairs: s.Pairs, Opts: hybrid},
	}
}

// Datasets is the indexed Water/Roads pair every workload joins.
type Datasets struct {
	Scale Scale
	Water *distjoin.Index
	Roads *distjoin.Index
}

// Load generates and bulk-loads the datasets at the given scale.
func Load(s Scale) (*Datasets, error) {
	water, err := distjoin.BulkIndexPoints(distjoin.IndexConfig{}, datagen.Water(s.Seed, s.WaterN))
	if err != nil {
		return nil, fmt.Errorf("bench: building Water: %w", err)
	}
	roads, err := distjoin.BulkIndexPoints(distjoin.IndexConfig{}, datagen.Roads(s.Seed+1, s.RoadsN))
	if err != nil {
		water.Close()
		return nil, fmt.Errorf("bench: building Roads: %w", err)
	}
	return &Datasets{Scale: s, Water: water, Roads: roads}, nil
}

// Close releases both indexes.
func (d *Datasets) Close() {
	d.Water.Close()
	d.Roads.Close()
}

// RunWorkload executes one workload and returns its profile. Buffer caches
// are dropped first so node I/O is cold-cache comparable across runs and
// across trajectory points regardless of matrix order.
func (d *Datasets) RunWorkload(w Workload) (*distjoin.Profile, error) {
	if err := d.Water.Tree().DropCache(); err != nil {
		return nil, err
	}
	if err := d.Roads.Tree().DropCache(); err != nil {
		return nil, err
	}
	pf := distjoin.NewProfiler()
	opts := w.Opts
	opts.Counters = nil
	opts.Obs = nil
	pf.Attach(&opts)
	pf.AttachIndex(d.Water)
	pf.AttachIndex(d.Roads)

	if w.Server {
		return d.runServerWorkload(w, opts, pf)
	}

	// The profiled window is exactly iterator open -> drain -> close;
	// anything else (cache drops above, explain sampling below) would
	// dilute phase coverage with time the spans cannot see.
	pf.Start()
	next, closeFn, err := d.open(w, opts)
	if err != nil {
		return nil, err
	}
	var reported int64
	var lastDist float64
	for reported < int64(w.Pairs) {
		p, ok, err := next()
		if err != nil {
			closeFn()
			return nil, fmt.Errorf("bench: workload %q: %w", w.Name, err)
		}
		if !ok {
			break
		}
		reported++
		lastDist = p.Dist
		if isMark(reported) || reported == int64(w.Pairs) {
			pf.MarkKth(reported, p.Dist)
		}
	}
	if err := closeFn(); err != nil {
		return nil, fmt.Errorf("bench: workload %q: close: %w", w.Name, err)
	}
	prof := pf.Finish(w.Name)
	if reported == 0 {
		return nil, fmt.Errorf("bench: workload %q reported no pairs", w.Name)
	}
	if w.Deterministic && prof.Coverage < MinCoverage {
		return nil, fmt.Errorf("bench: workload %q: phase attribution covers only %.1f%% of wall time (want >= %.0f%%) — instrumentation leak",
			w.Name, prof.Coverage*100, MinCoverage*100)
	}
	if w.Explain {
		rows, err := distjoin.BuildExplain(d.Water, d.Roads, distjoin.ExplainConfig{
			K:       w.Pairs,
			KthDist: lastDist,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: workload %q: explain: %w", w.Name, err)
		}
		prof.Explain = rows
	}
	return prof, nil
}

// runServerWorkload drains the workload through the HTTP cursor service:
// it serves both indexes on loopback with the profiler-attached options as
// the server's BaseOptions template, opens one cursor, and pulls
// serverBatch pairs per request until the workload's pair target is met.
// The profiled window covers create -> pulls -> delete, so the profile's
// wall-clock rows include the service overhead while the work counters
// remain exactly the engine's (and therefore gate deterministically).
func (d *Datasets) runServerWorkload(w Workload, opts distjoin.Options, pf *distjoin.Profiler) (*distjoin.Profile, error) {
	const serverBatch = 128

	reg := server.NewRegistry()
	if err := reg.RegisterIndex("water", d.Water); err != nil {
		return nil, err
	}
	if err := reg.RegisterIndex("roads", d.Roads); err != nil {
		return nil, err
	}
	running, err := server.Start("127.0.0.1:0", server.Config{
		Registry:    reg,
		BaseOptions: opts,
	}, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: workload %q: starting server: %w", w.Name, err)
	}
	defer running.Close()
	base := "http://" + running.Addr()

	pf.Start()
	body, _ := json.Marshal(server.QueryRequest{
		Kind: "join", Index1: "water", Index2: "roads", MaxPairs: w.Pairs,
	})
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("bench: workload %q: create: %d: %s", w.Name, resp.StatusCode, raw)
	}
	var cr server.CreateResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		return nil, err
	}

	var reported int64
	for reported < int64(w.Pairs) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/cursor/%s/next?k=%d", base, cr.Cursor, serverBatch))
		if err != nil {
			return nil, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("bench: workload %q: next: %d: %s", w.Name, resp.StatusCode, raw)
		}
		var nr server.NextResponse
		if err := json.Unmarshal(raw, &nr); err != nil {
			return nil, err
		}
		for _, p := range nr.Pairs {
			reported++
			if isMark(reported) || reported == int64(w.Pairs) {
				pf.MarkKth(reported, p.Dist)
			}
		}
		if nr.Done {
			break
		}
	}

	// DELETE closes the engine iterator, which lands the span tree the
	// profiler reads in Finish.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/cursor/"+cr.Cursor, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		return nil, fmt.Errorf("bench: workload %q: delete: %d", w.Name, dresp.StatusCode)
	}
	prof := pf.Finish(w.Name)
	if reported == 0 {
		return nil, fmt.Errorf("bench: workload %q reported no pairs", w.Name)
	}
	return prof, nil
}

// open starts the workload's iterator.
func (d *Datasets) open(w Workload, opts distjoin.Options) (func() (distjoin.Pair, bool, error), func() error, error) {
	if w.Semi {
		s, err := distjoin.DistanceSemiJoin(d.Water, d.Roads, distjoin.FilterLocal, opts)
		if err != nil {
			return nil, nil, err
		}
		return s.Next, s.Close, nil
	}
	j, err := distjoin.DistanceJoin(d.Water, d.Roads, opts)
	if err != nil {
		return nil, nil, err
	}
	return j.Next, j.Close, nil
}

// isMark reports whether the n-th pair is a time-to-kth mark (powers of
// ten).
func isMark(n int64) bool {
	for m := int64(1); m <= n; m *= 10 {
		if m == n {
			return true
		}
	}
	return false
}

// Run executes the full matrix at a scale and assembles the trajectory
// point. The result is schema-validated before being returned.
func Run(s Scale) (*profile.Trajectory, error) {
	d, err := Load(s)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	t := &profile.Trajectory{
		SchemaVersion: profile.SchemaVersion,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		Tool:          "benchrun",
		Scale:         s.Name,
		Env:           profile.CaptureEnv(),
	}
	for _, w := range Matrix(s) {
		prof, err := d.RunWorkload(w)
		if err != nil {
			return nil, err
		}
		t.Workloads = append(t.Workloads, profile.WorkloadProfile{
			Name:          w.Name,
			Deterministic: w.Deterministic,
			Profile:       *prof,
		})
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("bench: self-check: %w", err)
	}
	return t, nil
}
