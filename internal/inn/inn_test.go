package inn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"distjoin/internal/geom"
	"distjoin/internal/quadtree"
	"distjoin/internal/rtree"
	"distjoin/internal/spatial"
)

func buildTree(t testing.TB, pts []geom.Point) *rtree.Tree {
	t.Helper()
	items := make([]rtree.Item, len(pts))
	for i, p := range pts {
		items[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
	}
	tr, err := rtree.BulkLoad(rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 32}, items)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func randPts(seed int64, n int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
	}
	return pts
}

func TestNNOrderMatchesBruteForce(t *testing.T) {
	pts := randPts(1, 500)
	tr := buildTree(t, pts)
	q := geom.Pt(333, 444)
	it, err := New(tr, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r.Dist)
	}
	if len(got) != len(pts) {
		t.Fatalf("iterated %d results, want %d", len(got), len(pts))
	}
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = geom.Euclidean.Dist(q, p)
	}
	sort.Float64s(want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("neighbour %d: %g, want %g", i, got[i], want[i])
		}
	}
}

func TestNNFirstIsNearest(t *testing.T) {
	pts := randPts(2, 300)
	tr := buildTree(t, pts)
	q := geom.Pt(500, 500)
	res, err := Nearest(tr, q, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	best := math.Inf(1)
	for _, p := range pts {
		if d := geom.Euclidean.Dist(q, p); d < best {
			best = d
		}
	}
	if math.Abs(res[0].Dist-best) > 1e-9 {
		t.Fatalf("first = %g, nearest = %g", res[0].Dist, best)
	}
}

func TestNNMaxDist(t *testing.T) {
	pts := randPts(3, 400)
	tr := buildTree(t, pts)
	q := geom.Pt(100, 100)
	const maxd = 80.0
	it, err := New(tr, q, Options{MaxDist: maxd})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r.Dist > maxd {
			t.Fatalf("result beyond MaxDist: %g", r.Dist)
		}
		count++
	}
	want := 0
	for _, p := range pts {
		if geom.Euclidean.Dist(q, p) <= maxd {
			want++
		}
	}
	if count != want {
		t.Fatalf("found %d within range, want %d", count, want)
	}
}

func TestNNMaxResults(t *testing.T) {
	tr := buildTree(t, randPts(4, 200))
	res, err := Nearest(tr, geom.Pt(0, 0), 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestNNEmptyTree(t *testing.T) {
	tr := buildTree(t, nil)
	it, err := New(tr, geom.Pt(1, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it.Next(); ok {
		t.Fatal("empty tree returned a neighbour")
	}
}

func TestNNValidation(t *testing.T) {
	tr := buildTree(t, randPts(5, 10))
	if _, err := New(nil, geom.Pt(0, 0), Options{}); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := New(tr, geom.Pt(0, 0, 0), Options{}); err == nil {
		t.Error("3-D query on 2-D tree accepted")
	}
}

func TestNNOtherMetric(t *testing.T) {
	pts := randPts(6, 200)
	tr := buildTree(t, pts)
	q := geom.Pt(700, 200)
	res, err := Nearest(tr, q, 5, Options{Metric: geom.Manhattan})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = geom.Manhattan.Dist(q, p)
	}
	sort.Float64s(want)
	for i, r := range res {
		if math.Abs(r.Dist-want[i]) > 1e-9 {
			t.Fatalf("manhattan neighbour %d: %g, want %g", i, r.Dist, want[i])
		}
	}
}

// Property: for random data, query points and k, the k results are exactly
// the k smallest brute-force distances.
func TestPropNNCorrect(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		pts := randPts(seed+100, 50+rnd.Intn(300))
		tr, err := rtree.BulkLoad(rtree.Config{Dims: 2, PageSize: 512, BufferFrames: 32},
			func() []rtree.Item {
				items := make([]rtree.Item, len(pts))
				for i, p := range pts {
					items[i] = rtree.Item{Rect: p.Rect(), Obj: rtree.ObjID(i)}
				}
				return items
			}())
		if err != nil {
			return false
		}
		defer tr.Close()
		q := geom.Pt(rnd.Float64()*1200-100, rnd.Float64()*1200-100)
		k := 1 + rnd.Intn(len(pts))
		res, err := Nearest(tr, q, k, Options{})
		if err != nil || len(res) != k {
			return false
		}
		want := make([]float64, len(pts))
		for i, p := range pts {
			want[i] = geom.Euclidean.Dist(q, p)
		}
		sort.Float64s(want)
		for i, r := range res {
			if math.Abs(r.Dist-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFarthestFirst(t *testing.T) {
	pts := randPts(8, 400)
	tr := buildTree(t, pts)
	q := geom.Pt(250, 700)
	it, err := New(tr, q, Options{Farthest: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r.Dist)
	}
	if len(got) != len(pts) {
		t.Fatalf("iterated %d, want %d", len(got), len(pts))
	}
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = geom.Euclidean.Dist(q, p)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("farthest %d: %g, want %g", i, got[i], want[i])
		}
	}
}

func TestFarthestWithMaxResults(t *testing.T) {
	pts := randPts(9, 300)
	tr := buildTree(t, pts)
	q := geom.Pt(0, 0)
	res, err := Nearest(tr, q, 5, Options{Farthest: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d", len(res))
	}
	worst := 0.0
	for _, p := range pts {
		if d := geom.Euclidean.Dist(q, p); d > worst {
			worst = d
		}
	}
	if math.Abs(res[0].Dist-worst) > 1e-9 {
		t.Fatalf("first farthest = %g, want %g", res[0].Dist, worst)
	}
}

func TestFarthestRejectsMaxDist(t *testing.T) {
	tr := buildTree(t, randPts(10, 10))
	if _, err := New(tr, geom.Pt(0, 0), Options{Farthest: true, MaxDist: 5}); err == nil {
		t.Fatal("Farthest+MaxDist accepted")
	}
}

// TestNNOverQuadtree runs the incremental NN over a quadtree through the
// spatial.Index abstraction — the same generality the join enjoys.
func TestNNOverQuadtree(t *testing.T) {
	pts := randPts(11, 400)
	qt, err := quadtree.New(quadtree.Config{
		Bounds:     geom.R(geom.Pt(0, 0), geom.Pt(1000, 1000)),
		BucketSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := qt.Insert(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Pt(321, 654)
	it, err := NewOverIndex(spatial.WrapQuadtree(qt), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, r.Dist)
	}
	if len(got) != len(pts) {
		t.Fatalf("quadtree NN returned %d results", len(got))
	}
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = geom.Euclidean.Dist(q, p)
	}
	sort.Float64s(want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("quadtree neighbour %d: %g, want %g", i, got[i], want[i])
		}
	}
}

func TestNNOverIndexValidation(t *testing.T) {
	if _, err := NewOverIndex(nil, geom.Pt(0, 0), Options{}); err == nil {
		t.Fatal("nil index accepted")
	}
}
