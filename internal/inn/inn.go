// Package inn implements the incremental nearest-neighbour algorithm of
// Hjaltason & Samet (reference [18] of the paper), from which the
// incremental distance join is derived: a priority queue holds index nodes
// and objects keyed by their minimum distance from the query point, and
// popping the queue yields neighbours in strictly non-decreasing distance
// order, one per call.
//
// The paper's §4.2.3 baseline — computing a distance semi-join by running a
// nearest-neighbour search per outer object and sorting — is built on this
// package.
package inn

import (
	"errors"
	"math"

	"distjoin/internal/geom"
	"distjoin/internal/pairheap"
	"distjoin/internal/rtree"
	"distjoin/internal/spatial"
	"distjoin/internal/stats"
)

// Result is one neighbour: the object, its geometry, and its distance from
// the query point.
type Result struct {
	Obj  rtree.ObjID
	Rect geom.Rect
	Dist float64
}

// Options configures an incremental nearest-neighbour search.
type Options struct {
	// Metric is the distance metric; geom.Euclidean when nil.
	Metric geom.Metric
	// MaxDist prunes candidates beyond this distance; +Inf when 0.
	MaxDist float64
	// MaxResults stops the iterator after this many neighbours; unlimited
	// when 0.
	MaxResults int
	// Farthest reverses the order: objects are reported farthest-first,
	// with index nodes keyed by the maximum distance from the query to
	// their region (the reverse-ordering idea of the paper's §2.2.5
	// applied to the underlying nearest-neighbour algorithm). MaxDist is
	// not supported in this mode.
	Farthest bool
	// Counters receives distance-calculation accounting. May be nil.
	Counters *stats.Counters
}

// qElem is a queue element: either a node (kindNode) or an object.
type qElem struct {
	dist  float64
	node  bool
	level int8 // for depth-first tie-breaking; -1 for objects
	ref   uint64
	rect  geom.Rect
}

// Iterator yields neighbours of a query point in ascending distance order.
type Iterator struct {
	ix       spatial.Index
	query    geom.Point
	opts     Options
	heap     *pairheap.Heap[qElem]
	reported int
	done     bool
}

// New creates an incremental nearest-neighbour iterator over an R*-tree for
// the given query point.
func New(tree *rtree.Tree, query geom.Point, opts Options) (*Iterator, error) {
	if tree == nil {
		return nil, errors.New("inn: tree is required")
	}
	return NewOverIndex(spatial.WrapRTree(tree), query, opts)
}

// NewOverIndex creates an incremental nearest-neighbour iterator over any
// hierarchical spatial index — the same generality the join enjoys (§2.2).
func NewOverIndex(ix spatial.Index, query geom.Point, opts Options) (*Iterator, error) {
	if ix == nil {
		return nil, errors.New("inn: index is required")
	}
	if query.Dim() != ix.Dims() {
		return nil, errors.New("inn: query dimension mismatch")
	}
	if opts.Metric == nil {
		opts.Metric = geom.Euclidean
	}
	if opts.MaxDist == 0 {
		opts.MaxDist = math.Inf(1)
	}
	if opts.Farthest && !math.IsInf(opts.MaxDist, 1) {
		return nil, errors.New("inn: MaxDist is not supported with Farthest")
	}
	farthest := opts.Farthest
	it := &Iterator{
		ix:    ix,
		query: query.Clone(),
		opts:  opts,
		heap: pairheap.New(func(a, b qElem) bool {
			if a.dist != b.dist {
				if farthest {
					return a.dist > b.dist
				}
				return a.dist < b.dist
			}
			if a.node != b.node {
				return !a.node // objects first at equal distance
			}
			if a.level != b.level {
				return a.level < b.level // deeper nodes first
			}
			return a.ref < b.ref
		}),
	}
	if ix.NumObjects() == 0 {
		it.done = true
		return it, nil
	}
	root, err := ix.Root()
	if err != nil {
		return nil, err
	}
	it.heap.Insert(qElem{
		dist:  0,
		node:  true,
		level: int8(root.Level),
		ref:   root.Ref,
	})
	return it, nil
}

// Next returns the next nearest neighbour; ok is false when the search
// space (or a configured limit) is exhausted.
func (it *Iterator) Next() (Result, bool, error) {
	if it.done {
		return Result{}, false, nil
	}
	for !it.heap.Empty() {
		e := it.heap.PopMin()
		if !it.opts.Farthest && e.dist > it.opts.MaxDist {
			break // everything remaining is farther still
		}
		if !e.node {
			it.reported++
			if it.opts.MaxResults > 0 && it.reported >= it.opts.MaxResults {
				it.done = true
			}
			return Result{Obj: rtree.ObjID(e.ref), Rect: e.rect, Dist: e.dist}, true, nil
		}
		n, err := it.ix.Node(e.ref)
		if err != nil {
			return Result{}, false, err
		}
		// Forward search keys everything by the minimum distance. The
		// farthest-first mode keys node regions by their maximum distance —
		// a sound upper bound on the (minimum) distance of any contained
		// object — while leaf geometry keeps its exact object distance.
		if n.Leaf {
			for _, o := range n.Objects {
				d := it.opts.Metric.MinDistPR(it.query, o.Rect)
				it.opts.Counters.AddDistCalc(1)
				if !it.opts.Farthest && d > it.opts.MaxDist {
					it.opts.Counters.Filter(1)
					continue
				}
				it.heap.Insert(qElem{dist: d, level: -1, ref: o.ID, rect: o.Rect})
				it.opts.Counters.QueueInsert(int64(it.heap.Len()))
			}
			continue
		}
		for _, c := range n.Children {
			var d float64
			if it.opts.Farthest {
				d = it.opts.Metric.MaxDistPR(it.query, c.Rect)
			} else {
				d = it.opts.Metric.MinDistPR(it.query, c.Rect)
			}
			it.opts.Counters.AddNodeDistCalc(1)
			if !it.opts.Farthest && d > it.opts.MaxDist {
				it.opts.Counters.Filter(1)
				continue
			}
			it.heap.Insert(qElem{dist: d, node: true, level: int8(c.Level), ref: c.Ref, rect: c.Rect})
			it.opts.Counters.QueueInsert(int64(it.heap.Len()))
		}
	}
	it.done = true
	return Result{}, false, nil
}

// Nearest is a convenience wrapper returning the k nearest neighbours of
// query (fewer when the tree is smaller or MaxDist intervenes).
func Nearest(tree *rtree.Tree, query geom.Point, k int, opts Options) ([]Result, error) {
	opts.MaxResults = k
	it, err := New(tree, query, opts)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, k)
	for len(out) < k {
		r, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, nil
}
