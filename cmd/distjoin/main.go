// Command distjoin runs an incremental distance join or distance semi-join
// over two CSV point files and streams the result pairs to stdout, one per
// line: "obj1 obj2 distance".
//
// Usage:
//
//	distjoin -a water.csv -b roads.csv [-semi] [-k 10] [-min d] [-max d]
//	         [-metric euclidean|manhattan|chessboard] [-reverse] [-stats]
//
// Pairs stream out closest-first as they are found — pipe through `head`
// to see the incremental behaviour: the first pairs appear long before a
// full join could complete.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"distjoin"
	"distjoin/internal/datagen"
)

func main() {
	fileA := flag.String("a", "", "CSV file with the first (outer) point set")
	fileB := flag.String("b", "", "CSV file with the second (inner) point set")
	semi := flag.Bool("semi", false, "compute the distance semi-join instead of the distance join")
	knn := flag.Int("knn", 0, "with -semi: report the knn nearest partners per object instead of 1")
	k := flag.Int("k", 0, "stop after k pairs (0 = unlimited); also activates max-distance estimation")
	minD := flag.Float64("min", 0, "minimum pair distance")
	maxD := flag.Float64("max", 0, "maximum pair distance (0 = unlimited)")
	metricName := flag.String("metric", "euclidean", "distance metric: euclidean, manhattan, chessboard")
	reverse := flag.Bool("reverse", false, "report pairs farthest-first")
	showStats := flag.Bool("stats", false, "print performance counters to stderr when done")
	flag.Parse()

	if err := run(*fileA, *fileB, *semi, *knn, *k, *minD, *maxD, *metricName, *reverse, *showStats); err != nil {
		fmt.Fprintln(os.Stderr, "distjoin:", err)
		os.Exit(1)
	}
}

func loadIndex(path string) (*distjoin.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pts, err := datagen.ReadPoints(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return distjoin.BulkIndexPoints(distjoin.IndexConfig{}, pts)
}

func run(fileA, fileB string, semi bool, knn, k int, minD, maxD float64, metricName string, reverse, showStats bool) error {
	if knn > 0 && !semi {
		return fmt.Errorf("-knn requires -semi")
	}
	if fileA == "" || fileB == "" {
		return fmt.Errorf("both -a and -b are required")
	}
	metric := distjoin.Metric(nil)
	switch metricName {
	case "euclidean":
		metric = distjoin.Euclidean
	case "manhattan":
		metric = distjoin.Manhattan
	case "chessboard":
		metric = distjoin.Chessboard
	default:
		return fmt.Errorf("unknown metric %q", metricName)
	}

	a, err := loadIndex(fileA)
	if err != nil {
		return err
	}
	defer a.Close()
	b, err := loadIndex(fileB)
	if err != nil {
		return err
	}
	defer b.Close()

	c := &distjoin.Stats{}
	a.SetCounters(c)
	b.SetCounters(c)
	opts := distjoin.Options{
		Metric:   metric,
		MinDist:  minD,
		MaxDist:  maxD,
		MaxPairs: k,
		Reverse:  reverse,
		Counters: c,
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	next, closeFn, err := makeIterator(a, b, semi, knn, opts)
	if err != nil {
		return err
	}
	defer closeFn()
	for {
		p, ok, err := next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if _, err := fmt.Fprintf(out, "%d %d %g\n", p.Obj1, p.Obj2, p.Dist); err != nil {
			return err
		}
	}
	if showStats {
		out.Flush()
		fmt.Fprintln(os.Stderr, c.String())
	}
	return nil
}

// makeIterator abstracts over join, semi-join and k-NN join.
func makeIterator(a, b *distjoin.Index, semi bool, knn int, opts distjoin.Options) (func() (distjoin.Pair, bool, error), func() error, error) {
	if semi {
		if knn < 1 {
			knn = 1
		}
		s, err := distjoin.KNearestJoin(a, b, knn, distjoin.FilterGlobalAll, opts)
		if err != nil {
			return nil, nil, err
		}
		return s.Next, s.Close, nil
	}
	j, err := distjoin.DistanceJoin(a, b, opts)
	if err != nil {
		return nil, nil, err
	}
	return j.Next, j.Close, nil
}
