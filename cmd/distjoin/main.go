// Command distjoin runs an incremental distance join or distance semi-join
// over two CSV point files and streams the result pairs to stdout, one per
// line: "obj1 obj2 distance".
//
// Usage:
//
//	distjoin -a water.csv -b roads.csv [-semi] [-k 10] [-min d] [-max d]
//	         [-metric euclidean|manhattan|chessboard] [-reverse] [-parallel n]
//	         [-queue memory|hybrid] [-queue-dt d] [-retries n] [-retry-backoff 1ms]
//	         [-timeout d]
//	         [-stats] [-stats-json] [-trace file] [-metrics-addr :8090]
//	         [-progress] [-linger 30s] [-explain] [-explain-json]
//	         [-flightrec n] [-slowlog file] [-slow-wall d] [-slow-nodeio n]
//	         [-slow-distcalcs n] [-query-id id]
//	         [-cpuprofile f] [-memprofile f]
//
// Pairs stream out closest-first as they are found — pipe through `head`
// to see the incremental behaviour: the first pairs appear long before a
// full join could complete.
//
// Observability: -trace writes a JSONL event trace (see the Observability
// section of DESIGN.md for the schema), -metrics-addr serves live
// Prometheus metrics on /metrics plus expvar and pprof under /debug/,
// -progress keeps a one-line frontier/ETA display on stderr, and
// -stats-json prints the final performance counters as one JSON object on
// stdout after the pair stream. -linger keeps the metrics endpoint up for
// the given duration after the join completes, so short runs can still be
// scraped.
//
// Query tracing: -flightrec keeps the last n completed query traces in an
// in-memory flight recorder — served as JSON at /debug/queries (and
// /debug/queries/<id>) when -metrics-addr is set, dumped to stderr
// otherwise. -slowlog appends the full span tree of slow queries to a
// JSONL file; -slow-wall, -slow-nodeio and -slow-distcalcs set the
// thresholds (no thresholds = every query is logged). -query-id names the
// run's trace; otherwise the tracer assigns a sequential ID. See DESIGN.md
// §12 for the trace schema and the metric/span/event reference.
//
// Profiling: -explain prints an EXPLAIN ANALYZE table on stderr when the
// run finishes — wall time attributed to engine phases, delay percentiles,
// and the cost model's predictions next to the observed actuals with
// relative error; -explain-json prints the same profile as one JSON
// document on stdout after the pair stream. -cpuprofile and -memprofile
// write pprof profiles on clean shutdown.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"sync"
	"time"

	"distjoin"
	"distjoin/internal/buildinfo"
	"distjoin/internal/datagen"
)

// cliOptions carries every flag; tests drive run with a literal.
type cliOptions struct {
	fileA, fileB string
	semi         bool
	knn          int
	k            int
	minD, maxD   float64
	metricName   string
	reverse      bool
	parallel     int
	queueName    string
	queueDT      float64
	retries      int
	retryBackoff time.Duration
	timeout      time.Duration
	showStats    bool
	statsJSON    bool
	tracePath    string
	metricsAddr  string
	progress     bool
	linger       time.Duration
	explain      bool
	explainJSON  bool
	cpuProfile   string
	memProfile   string
	flightRec    int
	slowLogPath  string
	slowWall     time.Duration
	slowNodeIO   int64
	slowDist     int64
	queryID      string
}

func main() {
	var o cliOptions
	flag.StringVar(&o.fileA, "a", "", "CSV file with the first (outer) point set")
	flag.StringVar(&o.fileB, "b", "", "CSV file with the second (inner) point set")
	flag.BoolVar(&o.semi, "semi", false, "compute the distance semi-join instead of the distance join")
	flag.IntVar(&o.knn, "knn", 0, "with -semi: report the knn nearest partners per object instead of 1")
	flag.IntVar(&o.k, "k", 0, "stop after k pairs (0 = unlimited); also activates max-distance estimation")
	flag.Float64Var(&o.minD, "min", 0, "minimum pair distance")
	flag.Float64Var(&o.maxD, "max", 0, "maximum pair distance (0 = unlimited)")
	flag.StringVar(&o.metricName, "metric", "euclidean", "distance metric: euclidean, manhattan, chessboard")
	flag.BoolVar(&o.reverse, "reverse", false, "report pairs farthest-first")
	flag.IntVar(&o.parallel, "parallel", 0, "partition workers (0/1 sequential, -1 one per CPU)")
	flag.StringVar(&o.queueName, "queue", "memory", "priority queue: memory, or hybrid (three-tier, pages large distances out of the heap)")
	flag.Float64Var(&o.queueDT, "queue-dt", 0, "with -queue hybrid: bucket width D_T (0 = adaptive)")
	flag.IntVar(&o.retries, "retries", 0, "retry transient queue-storage I/O errors up to this many attempts")
	flag.DurationVar(&o.retryBackoff, "retry-backoff", time.Millisecond, "initial backoff between I/O retries (doubles per attempt)")
	flag.DurationVar(&o.timeout, "timeout", 0, "wall-time budget for the whole run; the pairs delivered before it lapses are a correct closest-first prefix (0 = unlimited)")
	flag.BoolVar(&o.showStats, "stats", false, "print performance counters to stderr when done")
	flag.BoolVar(&o.statsJSON, "stats-json", false, "print the final performance counters as JSON on stdout after the pairs")
	flag.StringVar(&o.tracePath, "trace", "", "write a JSONL event trace to this file")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	flag.BoolVar(&o.progress, "progress", false, "show a live frontier/ETA line on stderr")
	flag.DurationVar(&o.linger, "linger", 0, "keep the metrics endpoint up this long after the join completes")
	flag.BoolVar(&o.explain, "explain", false, "print an EXPLAIN ANALYZE table (phases, delays, predicted vs actual) on stderr when done")
	flag.BoolVar(&o.explainJSON, "explain-json", false, "print the query profile as JSON on stdout after the pairs")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	flag.IntVar(&o.flightRec, "flightrec", 0, "enable per-query tracing with a flight recorder of this many traces (served at /debug/queries with -metrics-addr, dumped to stderr otherwise)")
	flag.StringVar(&o.slowLogPath, "slowlog", "", "write slow-query traces to this file as JSONL (enables per-query tracing)")
	flag.DurationVar(&o.slowWall, "slow-wall", 0, "slow-log queries whose wall time reaches this threshold (0 with no other threshold = log every query)")
	flag.Int64Var(&o.slowNodeIO, "slow-nodeio", 0, "slow-log queries whose node I/O count reaches this threshold")
	flag.Int64Var(&o.slowDist, "slow-distcalcs", 0, "slow-log queries whose distance-computation count reaches this threshold")
	flag.StringVar(&o.queryID, "query-id", "", "query ID for this run's trace (default: tracer-assigned)")
	version := flag.Bool("version", false, "print version and build metadata, then exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("distjoin"))
		return
	}

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "distjoin:", err)
		os.Exit(1)
	}
}

func loadIndex(path string) (*distjoin.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pts, err := datagen.ReadPoints(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return distjoin.BulkIndexPoints(distjoin.IndexConfig{}, pts)
}

func run(o cliOptions) error {
	if o.knn > 0 && !o.semi {
		return fmt.Errorf("-knn requires -semi")
	}
	if o.fileA == "" || o.fileB == "" {
		return fmt.Errorf("both -a and -b are required")
	}
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if o.memProfile != "" {
		defer func() {
			if err := writeHeapProfile(o.memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "distjoin: heap profile:", err)
			}
		}()
	}
	metric := distjoin.Metric(nil)
	switch o.metricName {
	case "euclidean":
		metric = distjoin.Euclidean
	case "manhattan":
		metric = distjoin.Manhattan
	case "chessboard":
		metric = distjoin.Chessboard
	default:
		return fmt.Errorf("unknown metric %q", o.metricName)
	}

	a, err := loadIndex(o.fileA)
	if err != nil {
		return err
	}
	defer a.Close()
	b, err := loadIndex(o.fileB)
	if err != nil {
		return err
	}
	defer b.Close()

	c := &distjoin.Stats{}
	var rec *distjoin.Recorder
	var traceFile *os.File
	if o.tracePath != "" || o.metricsAddr != "" || o.progress {
		cfg := distjoin.ObsConfig{}
		if o.tracePath != "" {
			traceFile, err = os.Create(o.tracePath)
			if err != nil {
				return err
			}
			defer traceFile.Close()
			cfg.Trace = traceFile
		}
		rec = distjoin.NewRecorder(cfg)
	}
	a.SetObserver(rec, c)
	b.SetObserver(rec, c)

	// Per-query tracing: a flight recorder, slow-query log, or explicit
	// query ID all enable the tracer. The slow-log file is closed after the
	// tracer flushes into it (defers run last-in first-out).
	var tracer *distjoin.QueryTracer
	if o.flightRec > 0 || o.slowLogPath != "" || o.queryID != "" ||
		o.slowWall > 0 || o.slowNodeIO > 0 || o.slowDist > 0 {
		cfg := distjoin.QueryTraceConfig{
			FlightSize:    o.flightRec,
			SlowWall:      o.slowWall,
			SlowNodeIO:    o.slowNodeIO,
			SlowDistCalcs: o.slowDist,
		}
		if o.slowLogPath != "" {
			slowFile, err := os.Create(o.slowLogPath)
			if err != nil {
				return err
			}
			defer slowFile.Close()
			cfg.SlowLog = slowFile
		}
		tracer = distjoin.NewQueryTracer(cfg)
		defer func() {
			if err := tracer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "distjoin: slow-query log:", err)
			}
		}()
	}

	if o.metricsAddr != "" {
		srv, err := distjoin.ServeMetricsTraced(o.metricsAddr, rec, c, tracer)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", srv.Addr())
		defer srv.Close()
		if o.linger > 0 {
			defer time.Sleep(o.linger)
		}
	}

	// A -timeout budget rides Options.Context into the engine: when the
	// deadline lapses the iterator surfaces ErrCanceled and the pairs
	// already printed are a correct closest-first prefix of the join.
	runCtx := context.Context(nil)
	if o.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
		defer cancel()
		runCtx = ctx
	}

	opts := distjoin.Options{
		Context:     runCtx,
		Metric:      metric,
		MinDist:     o.minD,
		MaxDist:     o.maxD,
		MaxPairs:    o.k,
		Reverse:     o.reverse,
		Parallelism: o.parallel,
		Counters:    c,
		Obs:         rec,
		Tracer:      tracer,
		QueryID:     o.queryID,
	}
	switch o.queueName {
	case "", "memory":
	case "hybrid":
		opts.Queue = distjoin.QueueHybrid
		opts.HybridDT = o.queueDT
		opts.HybridInMemory = true
	default:
		return fmt.Errorf("unknown queue %q (want memory or hybrid)", o.queueName)
	}
	if o.retries > 0 {
		opts.RetryIO = distjoin.RetryPolicy{MaxAttempts: o.retries, Backoff: o.retryBackoff}
	}

	var pf *distjoin.Profiler
	if o.explain || o.explainJSON {
		pf = distjoin.NewProfiler()
		pf.Attach(&opts)
		pf.AttachIndex(a)
		pf.AttachIndex(b)
		pf.Start()
	}

	if o.progress {
		stop := startProgress(a, b, o, rec)
		defer stop()
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	next, closeFn, err := makeIterator(a, b, o.semi, o.knn, opts)
	if err != nil {
		return err
	}
	defer closeFn()
	var nPairs int64
	var lastDist float64
	for {
		p, ok, err := next()
		if err != nil {
			if errors.Is(err, distjoin.ErrCanceled) {
				// Graceful degradation: the timeout cut the run short, but
				// everything printed so far is the exact closest-first prefix.
				// Report the truncation on stderr and finish normally.
				fmt.Fprintf(os.Stderr, "distjoin: stopped after %d pairs: %v\n", nPairs, err)
				break
			}
			return err
		}
		if !ok {
			break
		}
		nPairs++
		lastDist = p.Dist
		if pf != nil && (isMark(nPairs) || (o.k > 0 && nPairs == int64(o.k))) {
			pf.MarkKth(nPairs, p.Dist)
		}
		if _, err := fmt.Fprintf(out, "%d %d %g\n", p.Obj1, p.Obj2, p.Dist); err != nil {
			return err
		}
	}
	// Close the iterator before finishing the profile so the parallel
	// workers' span shards have been merged.
	if err := closeFn(); err != nil {
		return err
	}
	if err := rec.Close(); err != nil {
		return fmt.Errorf("flushing trace: %w", err)
	}
	// With a flight recorder but no metrics endpoint to curl, dump the
	// run's trace to stderr so it is not lost with the process.
	if tracer != nil && o.flightRec > 0 && o.metricsAddr == "" {
		if traces := tracer.Traces(); len(traces) > 0 {
			enc, err := json.MarshalIndent(traces[0], "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "%s\n", enc)
		}
	}
	if pf != nil {
		rows, err := distjoin.BuildExplain(a, b, distjoin.ExplainConfig{
			K:           o.k,
			KthDist:     lastDist,
			MaxDist:     o.maxD,
			PairsWithin: nPairs,
		})
		if err != nil {
			return err
		}
		pf.SetExplain(rows)
		prof := pf.Finish("distjoin")
		if o.explainJSON {
			enc, err := json.Marshal(prof)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s\n", enc)
		}
		if o.explain {
			out.Flush()
			printProfile(os.Stderr, prof)
		}
	}
	if o.statsJSON {
		enc, err := json.Marshal(c.Snapshot())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", enc)
	}
	if o.showStats {
		out.Flush()
		fmt.Fprintln(os.Stderr, c.String())
	}
	return nil
}

// startProgress launches the live stderr progress line and returns its stop
// function. The expected total comes from the cost model: k when the run is
// k-bounded, the estimated within-distance pair count when a maximum
// distance is set, and the full Cartesian product (or first-input size for
// the semi-join) otherwise.
func startProgress(a, b *distjoin.Index, o cliOptions, rec *distjoin.Recorder) func() {
	var total float64
	switch {
	case o.k > 0:
		total = float64(o.k)
	case o.maxD > 0 && !o.semi:
		if est, err := distjoin.EstimatePairsWithin(a, b, o.maxD, distjoin.CostOptions{}); err == nil {
			total = est
		}
	case o.semi:
		total = float64(a.Len() * max(1, o.knn))
	default:
		total = float64(a.Len()) * float64(b.Len())
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(200 * time.Millisecond)
		defer tick.Stop()
		start := time.Now()
		for {
			select {
			case <-done:
				fmt.Fprintln(os.Stderr)
				return
			case <-tick.C:
				s := rec.Snapshot()
				eta := "?"
				if total > 0 && s.Delivered > 0 {
					frac := float64(s.Delivered) / total
					if frac > 0 && frac <= 1 {
						remain := time.Duration(float64(time.Since(start)) * (1 - frac) / frac)
						eta = remain.Round(time.Second).String()
					}
				}
				fmt.Fprintf(os.Stderr, "\rpairs=%d frontier=%.4g queue=%d elapsed=%s eta=%s   ",
					s.Delivered, s.Frontier, s.QueueDepth,
					time.Since(start).Round(time.Second), eta)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// makeIterator abstracts over join, semi-join and k-NN join.
func makeIterator(a, b *distjoin.Index, semi bool, knn int, opts distjoin.Options) (func() (distjoin.Pair, bool, error), func() error, error) {
	if semi {
		if knn < 1 {
			knn = 1
		}
		s, err := distjoin.KNearestJoin(a, b, knn, distjoin.FilterGlobalAll, opts)
		if err != nil {
			return nil, nil, err
		}
		return s.Next, s.Close, nil
	}
	j, err := distjoin.DistanceJoin(a, b, opts)
	if err != nil {
		return nil, nil, err
	}
	return j.Next, j.Close, nil
}
