package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"

	"distjoin"
)

// isMark reports whether the n-th pair is a time-to-kth mark: powers of ten
// (1, 10, 100, ...), matching the marks cmd/benchrun records.
func isMark(n int64) bool {
	for m := int64(1); m <= n; m *= 10 {
		if m == n {
			return true
		}
	}
	return false
}

// writeHeapProfile triggers a GC (so the profile reflects live objects) and
// writes the heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// relErrString renders a signed relative error, mapping the profile's
// ±MaxFloat64 saturation (JSON stand-in for ±Inf) back to "inf".
func relErrString(e float64) string {
	if e >= math.MaxFloat64 {
		return "+inf"
	}
	if e <= -math.MaxFloat64 {
		return "-inf"
	}
	return fmt.Sprintf("%+.1f%%", e*100)
}

// printProfile renders a query profile as the human EXPLAIN ANALYZE table.
func printProfile(w io.Writer, p *distjoin.Profile) {
	fmt.Fprintf(w, "=== EXPLAIN ANALYZE: %s ===\n", p.Label)
	fmt.Fprintf(w, "wall %.4fs, phase coverage %.1f%%\n", p.WallSeconds, p.Coverage*100)
	fmt.Fprintf(w, "%-8s %12s %8s %12s\n", "phase", "seconds", "%wall", "count")
	for _, ph := range p.Phases {
		pctWall := 0.0
		if p.WallSeconds > 0 {
			pctWall = ph.Seconds / p.WallSeconds * 100
		}
		fmt.Fprintf(w, "%-8s %12.6f %7.1f%% %12d\n", ph.Phase, ph.Seconds, pctWall, ph.Count)
	}
	if p.IO.Reads > 0 || p.IO.Writes > 0 {
		fmt.Fprintf(w, "physical I/O: %d reads (%.6fs), %d writes (%.6fs) — nested inside the phases\n",
			p.IO.Reads, p.IO.ReadSeconds, p.IO.Writes, p.IO.WriteSeconds)
	}
	c := p.Counters
	fmt.Fprintf(w, "counters: pairs=%d dist_calcs=%d node_io=%d buffer_hits=%d queue_inserts=%d max_queue=%d batch_pruned=%d\n",
		c.PairsReported, c.DistCalcs, c.NodeIO, c.BufferHits, c.QueueInserts, c.MaxQueueSize, c.BatchPruned)
	if p.Delay.InterPair.Count > 0 {
		d := p.Delay.InterPair
		fmt.Fprintf(w, "inter-pair delay: p50 %.2gs  p95 %.2gs  p99 %.2gs  (n=%d)\n", d.P50S, d.P95S, d.P99S, d.Count)
	}
	if p.Delay.PopToEmit.Count > 0 {
		d := p.Delay.PopToEmit
		fmt.Fprintf(w, "pop-to-emit:      p50 %.2gs  p95 %.2gs  p99 %.2gs  (n=%d)\n", d.P50S, d.P95S, d.P99S, d.Count)
	}
	for _, t := range p.TimeToKth {
		fmt.Fprintf(w, "pair %8d after %10.6fs at distance %g\n", t.K, t.Seconds, t.Dist)
	}
	if len(p.Explain) > 0 {
		fmt.Fprintf(w, "%-18s %14s %14s %8s\n", "prediction", "predicted", "actual", "rel err")
		for _, r := range p.Explain {
			fmt.Fprintf(w, "%-18s %14.6g %14.6g %8s\n", r.Metric, r.Predicted, r.Actual, relErrString(r.RelErr))
		}
	}
}
