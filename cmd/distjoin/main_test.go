package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeCSV materializes a random point file and returns its path.
func writeCSV(t *testing.T, seed int64, n int) string {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	path := filepath.Join(t.TempDir(), "pts.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < n; i++ {
		fmt.Fprintf(f, "%g,%g\n", rnd.Float64()*100, rnd.Float64()*100)
	}
	return path
}

// captureStdout redirects os.Stdout for the duration of fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	total := 0
	for {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil || n == 0 {
			break
		}
	}
	return string(buf[:total]), runErr
}

func TestRunJoinStreamsPairs(t *testing.T) {
	a := writeCSV(t, 1, 50)
	b := writeCSV(t, 2, 60)
	out, err := captureStdout(t, func() error {
		return run(a, b, false, 0, 5, 0, 0, "euclidean", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != 5 {
		t.Fatalf("printed %d pairs, want 5:\n%s", lines, out)
	}
}

func TestRunSemiJoin(t *testing.T) {
	a := writeCSV(t, 3, 30)
	b := writeCSV(t, 4, 40)
	out, err := captureStdout(t, func() error {
		return run(a, b, true, 0, 0, 0, 0, "manhattan", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != 30 {
		t.Fatalf("semi-join printed %d pairs, want 30", lines)
	}
}

func TestRunValidation(t *testing.T) {
	a := writeCSV(t, 5, 10)
	if err := run("", a, false, 0, 0, 0, 0, "euclidean", false, false); err == nil {
		t.Error("missing -a accepted")
	}
	if err := run(a, a, false, 0, 0, 0, 0, "bogus", false, false); err == nil {
		t.Error("unknown metric accepted")
	}
	if err := run("/does/not/exist.csv", a, false, 0, 0, 0, 0, "euclidean", false, false); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunKNNJoin(t *testing.T) {
	a := writeCSV(t, 6, 20)
	b := writeCSV(t, 7, 30)
	out, err := captureStdout(t, func() error {
		return run(a, b, true, 3, 0, 0, 0, "euclidean", false, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != 60 {
		t.Fatalf("3-NN join printed %d pairs, want 60", lines)
	}
}

func TestRunKNNRequiresSemi(t *testing.T) {
	a := writeCSV(t, 8, 5)
	if err := run(a, a, false, 3, 0, 0, 0, "euclidean", false, false); err == nil {
		t.Fatal("-knn without -semi accepted")
	}
}
