package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distjoin"
)

// writeCSV materializes a random point file and returns its path.
func writeCSV(t *testing.T, seed int64, n int) string {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	path := filepath.Join(t.TempDir(), "pts.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < n; i++ {
		fmt.Fprintf(f, "%g,%g\n", rnd.Float64()*100, rnd.Float64()*100)
	}
	return path
}

// captureStdout redirects os.Stdout for the duration of fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	total := 0
	for {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil || n == 0 {
			break
		}
	}
	return string(buf[:total]), runErr
}

func countLines(s string) int {
	lines := 0
	for _, c := range s {
		if c == '\n' {
			lines++
		}
	}
	return lines
}

func TestRunJoinStreamsPairs(t *testing.T) {
	a := writeCSV(t, 1, 50)
	b := writeCSV(t, 2, 60)
	out, err := captureStdout(t, func() error {
		return run(cliOptions{fileA: a, fileB: b, k: 5, metricName: "euclidean"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines := countLines(out); lines != 5 {
		t.Fatalf("printed %d pairs, want 5:\n%s", lines, out)
	}
}

func TestRunSemiJoin(t *testing.T) {
	a := writeCSV(t, 3, 30)
	b := writeCSV(t, 4, 40)
	out, err := captureStdout(t, func() error {
		return run(cliOptions{fileA: a, fileB: b, semi: true, metricName: "manhattan"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines := countLines(out); lines != 30 {
		t.Fatalf("semi-join printed %d pairs, want 30", lines)
	}
}

func TestRunValidation(t *testing.T) {
	a := writeCSV(t, 5, 10)
	if err := run(cliOptions{fileB: a, metricName: "euclidean"}); err == nil {
		t.Error("missing -a accepted")
	}
	if err := run(cliOptions{fileA: a, fileB: a, metricName: "bogus"}); err == nil {
		t.Error("unknown metric accepted")
	}
	if err := run(cliOptions{fileA: "/does/not/exist.csv", fileB: a, metricName: "euclidean"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunKNNJoin(t *testing.T) {
	a := writeCSV(t, 6, 20)
	b := writeCSV(t, 7, 30)
	out, err := captureStdout(t, func() error {
		return run(cliOptions{fileA: a, fileB: b, semi: true, knn: 3, metricName: "euclidean"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines := countLines(out); lines != 60 {
		t.Fatalf("3-NN join printed %d pairs, want 60", lines)
	}
}

func TestRunKNNRequiresSemi(t *testing.T) {
	a := writeCSV(t, 8, 5)
	if err := run(cliOptions{fileA: a, fileB: a, knn: 3, metricName: "euclidean"}); err == nil {
		t.Fatal("-knn without -semi accepted")
	}
}

// TestRunStatsJSON asserts the -stats-json satellite: the last stdout line
// is a JSON stats.Counters snapshot consistent with the pair stream.
func TestRunStatsJSON(t *testing.T) {
	a := writeCSV(t, 9, 40)
	b := writeCSV(t, 10, 50)
	out, err := captureStdout(t, func() error {
		return run(cliOptions{fileA: a, fileB: b, k: 7, metricName: "euclidean", statsJSON: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 7 pairs + 1 JSON line:\n%s", len(lines), out)
	}
	var snap distjoin.Stats
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &snap); err != nil {
		t.Fatalf("last line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if snap.PairsReported != 7 {
		t.Errorf("PairsReported = %d, want 7", snap.PairsReported)
	}
	if snap.DistCalcs == 0 || snap.QueueInserts == 0 {
		t.Errorf("expected non-zero work counters, got %+v", snap)
	}
}

// TestRunTrace asserts the -trace flag writes a parseable JSONL trace whose
// deliver events match the printed pairs.
func TestRunTrace(t *testing.T) {
	a := writeCSV(t, 11, 40)
	b := writeCSV(t, 12, 50)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	out, err := captureStdout(t, func() error {
		return run(cliOptions{fileA: a, fileB: b, k: 9, metricName: "euclidean", tracePath: tracePath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines := countLines(out); lines != 9 {
		t.Fatalf("printed %d pairs, want 9", lines)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := distjoin.ReadTrace(f)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	delivers := 0
	for _, ev := range events {
		if ev.Type == distjoin.EvDeliver {
			delivers++
		}
	}
	if delivers != 9 {
		t.Errorf("trace has %d deliver events, want 9", delivers)
	}
	if _, _, ok := distjoin.TimeToKth(events, 9); !ok {
		t.Error("TimeToKth(9) not found in trace")
	}
}

// TestRunParallelWithObservability exercises the parallel path with a
// recorder attached (merge deliveries, per-partition emits).
func TestRunParallelWithObservability(t *testing.T) {
	a := writeCSV(t, 13, 200)
	b := writeCSV(t, 14, 200)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	out, err := captureStdout(t, func() error {
		return run(cliOptions{fileA: a, fileB: b, k: 25, parallel: 3, metricName: "euclidean", tracePath: tracePath})
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines := countLines(out); lines != 25 {
		t.Fatalf("printed %d pairs, want 25", lines)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := distjoin.ReadTrace(f)
	if err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	delivers, emits := 0, 0
	for _, ev := range events {
		if ev.Type == distjoin.EvDeliver {
			delivers++
		}
		if ev.Type == distjoin.EvEmit && ev.Part >= 0 {
			emits++
		}
	}
	if delivers != 25 {
		t.Errorf("trace has %d deliver events, want 25", delivers)
	}
	if emits < 25 {
		t.Errorf("trace has %d partition emit events, want >= 25", emits)
	}
}

// TestRunQueryTracing drives the per-query tracing flags: -slowlog captures
// the run as a JSONL trace, and -flightrec (without a metrics endpoint)
// dumps the trace to stderr.
func TestRunQueryTracing(t *testing.T) {
	a := writeCSV(t, 21, 40)
	b := writeCSV(t, 22, 50)
	slow := filepath.Join(t.TempDir(), "slow.jsonl")
	out, err := captureStdout(t, func() error {
		return run(cliOptions{
			fileA: a, fileB: b, k: 10, metricName: "euclidean",
			flightRec: 4, slowLogPath: slow, queryID: "cli-test",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if countLines(out) != 10 {
		t.Fatalf("pair lines = %d, want 10", countLines(out))
	}
	raw, err := os.ReadFile(slow)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log has %d lines, want 1", len(lines))
	}
	var qt distjoin.QueryTrace
	if err := json.Unmarshal([]byte(lines[0]), &qt); err != nil {
		t.Fatalf("slow log line is not a trace: %v", err)
	}
	if qt.ID != "cli-test" || qt.Kind != "join" || qt.Resources.Pairs != 10 {
		t.Fatalf("trace = id %q kind %q pairs %d", qt.ID, qt.Kind, qt.Resources.Pairs)
	}
	if qt.Coverage < 0.5 {
		t.Errorf("coverage = %v, suspiciously low for a sequential run", qt.Coverage)
	}
}

// TestRunSlowLogThreshold: a threshold no tiny run can reach keeps the log
// empty.
func TestRunSlowLogThreshold(t *testing.T) {
	a := writeCSV(t, 23, 20)
	b := writeCSV(t, 24, 20)
	slow := filepath.Join(t.TempDir(), "slow.jsonl")
	_, err := captureStdout(t, func() error {
		return run(cliOptions{
			fileA: a, fileB: b, k: 5, metricName: "euclidean",
			slowLogPath: slow, slowWall: time.Hour,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(slow)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(raw)) != "" {
		t.Fatalf("slow log not empty under 1h wall threshold: %q", raw)
	}
}
