package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"distjoin"
)

// captureStderr redirects os.Stderr for the duration of fn.
func captureStderr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := fn()
	w.Close()
	os.Stderr = old
	buf := make([]byte, 1<<20)
	total := 0
	for {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil || n == 0 {
			break
		}
	}
	return string(buf[:total]), runErr
}

func TestIsMark(t *testing.T) {
	marks := []int64{1, 10, 100, 1000}
	for _, m := range marks {
		if !isMark(m) {
			t.Errorf("isMark(%d) = false", m)
		}
	}
	for _, m := range []int64{0, 2, 5, 11, 99, 101, 500} {
		if isMark(m) {
			t.Errorf("isMark(%d) = true", m)
		}
	}
}

func TestRunExplainTable(t *testing.T) {
	a := writeCSV(t, 41, 120)
	b := writeCSV(t, 42, 120)
	var errTable string
	_, err := captureStdout(t, func() error {
		var runErr error
		errTable, runErr = captureStderr(t, func() error {
			return run(cliOptions{fileA: a, fileB: b, k: 25, maxD: 50,
				metricName: "euclidean", explain: true})
		})
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"EXPLAIN ANALYZE", "phase coverage", "expand", "emit",
		"counters:", "distance_for_k", "pairs_within_d", "rel err",
	} {
		if !strings.Contains(errTable, want) {
			t.Errorf("explain table missing %q:\n%s", want, errTable)
		}
	}
}

func TestRunExplainJSON(t *testing.T) {
	a := writeCSV(t, 43, 100)
	b := writeCSV(t, 44, 100)
	const k = 12
	out, err := captureStdout(t, func() error {
		return run(cliOptions{fileA: a, fileB: b, k: k,
			metricName: "euclidean", explainJSON: true})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != k+1 {
		t.Fatalf("got %d lines, want %d pairs + 1 JSON profile", len(lines), k+1)
	}
	var prof distjoin.Profile
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &prof); err != nil {
		t.Fatalf("profile JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if prof.Label != "distjoin" {
		t.Errorf("label = %q", prof.Label)
	}
	if prof.WallSeconds <= 0 {
		t.Errorf("wall = %g", prof.WallSeconds)
	}
	if len(prof.Phases) == 0 {
		t.Error("no phase attribution")
	}
	if prof.Counters.PairsReported != k {
		t.Errorf("pairs_reported = %d, want %d", prof.Counters.PairsReported, k)
	}
	if len(prof.Explain) == 0 {
		t.Error("no explain rows")
	}
	for _, row := range prof.Explain {
		if row.Metric == "" || row.Predicted <= 0 {
			t.Errorf("bad explain row %+v", row)
		}
	}
	if len(prof.TimeToKth) == 0 {
		t.Error("no time-to-kth marks")
	}
	last := prof.TimeToKth[len(prof.TimeToKth)-1]
	if last.K != k {
		t.Errorf("last mark k = %d, want %d", last.K, k)
	}
}

func TestRunCPUAndMemProfileFlags(t *testing.T) {
	a := writeCSV(t, 45, 60)
	b := writeCSV(t, 46, 60)
	dir := t.TempDir()
	cpu := dir + "/cpu.pprof"
	mem := dir + "/mem.pprof"
	_, err := captureStdout(t, func() error {
		return run(cliOptions{fileA: a, fileB: b, k: 5, metricName: "euclidean",
			cpuProfile: cpu, memProfile: mem})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
