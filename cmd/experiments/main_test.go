package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run("bogus-scale", "table1", 0, false, "", ""); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	// Use the small scale but a non-matching experiment id: the harness
	// must fail fast without executing anything heavy.
	if err := run("small", "nonexistent", 0, false, "", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}
