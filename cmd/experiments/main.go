// Command experiments regenerates the tables and figures of the paper's
// evaluation section (§4) and prints them as aligned text tables.
//
// Usage:
//
//	experiments [-scale small|full] [-exp all|table1|table1r|fig6|fig7|parallel|faults|fig8|fig9|fig10|kernels|sec414|sec423|dims|trace]
//	            [-latency 100us] [-json] [-trace file] [-metrics-addr :8090]
//
// The small scale (default) runs the whole matrix in seconds; -scale full
// uses the paper's dataset cardinalities (37,495 × 200,482 points).
//
// -exp trace derives a time-to-k-th-pair table from an event trace of the
// Table-1 workload (the incrementality claim, measured); with -json it is
// emitted in the query-profile schema (internal/profile), so the output can
// feed the trajectory files cmd/benchrun records. -trace saves the raw
// JSONL trace, and -metrics-addr serves live Prometheus metrics for every
// experiment run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"distjoin/internal/buildinfo"
	"distjoin/internal/experiments"
	"distjoin/internal/obs"
)

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: small or full")
	expName := flag.String("exp", "all", "experiment id: all, table1, table1r, fig6, fig7, parallel, faults, fig8, fig9, fig10, kernels, sec414, sec423, dims, trace")
	latency := flag.Duration("latency", 0, "simulated disk latency per node I/O (e.g. 100us) to restore the paper's I/O-dominated cost model")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of tables")
	tracePath := flag.String("trace", "", "with -exp trace: also save the raw JSONL event trace to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics, /debug/vars and /debug/pprof on this address during the runs")
	version := flag.Bool("version", false, "print version and build metadata, then exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("experiments"))
		return
	}

	if err := run(*scaleName, *expName, *latency, *asJSON, *tracePath, *metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(scaleName, expName string, latency time.Duration, asJSON bool, tracePath, metricsAddr string) error {
	scale, err := experiments.ScaleByName(scaleName)
	if err != nil {
		return err
	}
	if !asJSON {
		fmt.Printf("scale %s: Water=%d Roads=%d pairs=%v latency=%v\n", scale.Name, scale.WaterN, scale.RoadsN, scale.PairCounts, latency)
	}
	start := time.Now()
	d, err := experiments.LoadWithLatency(scale, latency)
	if err != nil {
		return err
	}
	defer d.Close()
	if metricsAddr != "" {
		d.Obs = obs.New(obs.Config{})
		srv, err := obs.ServeMetrics(metricsAddr, d.Obs, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", srv.Addr())
		defer srv.Close()
	}
	if !asJSON {
		fmt.Printf("built R*-trees in %s (Water height %d, Roads height %d)\n\n",
			experiments.FormatDuration(time.Since(start)), d.Water.Height(), d.Roads.Height())
	}

	runTrace := func(d *experiments.Datasets) ([]experiments.Run, error) {
		var extra io.Writer
		if tracePath != "" {
			f, err := os.Create(tracePath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			extra = f
		}
		return experiments.TraceTTKTo(d, extra)
	}

	type exp struct {
		id    string
		title string
		run   func(*experiments.Datasets) ([]experiments.Run, error)
	}
	all := []exp{
		{"table1", "Table 1: incremental distance join measures (Even/DepthFirst, hybrid queue)", experiments.Table1},
		{"table1r", "§4.1.1: reversed operand order (Roads ⋈ Water), Even vs Basic", experiments.Table1Reversed},
		{"fig6", "Figure 6: execution time of four algorithm versions", experiments.Fig6},
		{"fig7", "Figure 7: maximum distance and maximum pairs (distance join)", experiments.Fig7},
		{"fig8", "Figure 8: memory-only vs hybrid priority queue", experiments.Fig8},
		{"fig9", "Figure 9: distance semi-join filtering strategies", experiments.Fig9},
		{"fig10", "Figure 10: maximum distance and maximum pairs (distance semi-join)", experiments.Fig10},
		{"parallel", "Parallel partitioned join: speedup vs Parallelism (beyond the paper)", experiments.ParallelSpeedup},
		{"faults", "Fault injection: retries under transient I/O faults, ordered prefix before unrecoverable ones (beyond the paper)", experiments.Faults},
		{"kernels", "Batched columnar kernels vs scalar expansion: identical work counters, wall time only (beyond the paper)", experiments.Kernels},
		{"sec414", "§4.1.4: nested-loop alternative", experiments.Sec414},
		{"sec423", "§4.2.3: semi-join vs nearest-neighbour implementation (both orders)", experiments.Sec423},
		{"dims", "§5 future work: distance join across dimensionalities", func(*experiments.Datasets) ([]experiments.Run, error) {
			return experiments.DimSweep(scale)
		}},
		{"trace", "Time to k-th pair, from an event trace of the Table 1 workload (incrementality, measured)", runTrace},
	}

	selected := strings.Split(expName, ",")
	match := func(id string) bool {
		for _, s := range selected {
			if s == "all" || s == id {
				return true
			}
		}
		return false
	}
	ran := 0
	for _, e := range all {
		if !match(e.id) {
			continue
		}
		runs, err := e.run(d)
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if asJSON {
			// The trace experiment shares the query-profile schema (see
			// internal/profile) so its output can feed trajectory files.
			var err error
			if e.id == "trace" {
				err = experiments.WriteTTKJSON(os.Stdout, runs)
			} else {
				err = experiments.WriteJSON(os.Stdout, e.id, runs)
			}
			if err != nil {
				return err
			}
		} else {
			experiments.PrintRuns(os.Stdout, fmt.Sprintf("[%s] %s", e.id, e.title), runs)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %q", expName)
	}
	return nil
}
