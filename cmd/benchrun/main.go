// Command benchrun records and compares benchmark-trajectory points.
//
// Recording runs the canonical workload matrix (Table-1 variants × queue
// configuration × parallelism, plus the semi-join) at a chosen scale and
// writes a schema-versioned trajectory file:
//
//	benchrun -scale smoke              # writes BENCH_<date>.json
//	benchrun -scale small -o out.json
//
// Comparing diffs two trajectory files and exits nonzero when a
// hardware-independent work counter (node I/O, distance calculations, max
// queue size) of a deterministic workload regresses beyond the threshold;
// wall-clock growth only warns, because wall time is not comparable across
// machines:
//
//	benchrun -compare BENCH_baseline.json BENCH_new.json [-threshold 0.05]
//
// -validate checks a file against the schema without comparing. -cpuprofile
// and -memprofile write pprof profiles of the recording run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"distjoin/internal/bench"
	"distjoin/internal/buildinfo"
	"distjoin/internal/profile"
)

// benchOptions carries every flag; tests drive run with a literal.
type benchOptions struct {
	scale      string
	out        string
	compare    bool
	compareOld string
	compareNew string
	validate   string
	threshold  float64
	cpuProfile string
	memProfile string
}

// errRegression marks a failed compare so main can exit nonzero without
// printing a redundant error chain.
var errRegression = errors.New("benchrun: regression detected")

func main() {
	var o benchOptions
	flag.StringVar(&o.scale, "scale", "smoke", "workload scale: smoke, small, full")
	flag.StringVar(&o.out, "o", "", "output file (default BENCH_<date>.json)")
	flag.BoolVar(&o.compare, "compare", false, "compare two trajectory files (old new); exit nonzero on gated regression")
	flag.StringVar(&o.validate, "validate", "", "validate this trajectory file against the schema and exit")
	flag.Float64Var(&o.threshold, "threshold", 0.05, "allowed relative growth of gated counters before a regression is declared")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the recording run to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	version := flag.Bool("version", false, "print version and build metadata, then exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("benchrun"))
		return
	}
	if o.compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchrun: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		o.compareOld, o.compareNew = flag.Arg(0), flag.Arg(1)
	}
	if err := run(o, os.Stdout); err != nil {
		if !errors.Is(err, errRegression) {
			fmt.Fprintln(os.Stderr, "benchrun:", err)
		}
		os.Exit(1)
	}
}

func run(o benchOptions, out *os.File) error {
	if o.compare {
		return runCompare(o, out)
	}
	if o.validate != "" {
		t, err := profile.ReadFile(o.validate)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: valid (schema v%d, %d workloads, scale %q, recorded %s)\n",
			o.validate, t.SchemaVersion, len(t.Workloads), t.Scale, t.CreatedAt)
		return nil
	}
	return runRecord(o, out)
}

func runRecord(o benchOptions, out *os.File) error {
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if o.memProfile != "" {
		defer func() {
			if err := writeHeapProfile(o.memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "benchrun: heap profile:", err)
			}
		}()
	}
	s, err := bench.ScaleByName(o.scale)
	if err != nil {
		return err
	}
	path := o.out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
	}
	t, err := bench.Run(s)
	if err != nil {
		return err
	}
	if err := t.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded trajectory point: %s (scale %s, %d workloads)\n", path, s.Name, len(t.Workloads))
	for _, w := range t.Workloads {
		p := w.Profile
		det := "det"
		if !w.Deterministic {
			det = "nondet"
		}
		fmt.Fprintf(out, "  %-22s %-6s wall %8.4fs  coverage %5.1f%%  pairs %7d  node_io %6d  dist_calcs %9d  max_queue %7d\n",
			w.Name, det, p.WallSeconds, p.Coverage*100,
			p.Counters.PairsReported, p.Counters.NodeIO, p.Counters.DistCalcs, p.Counters.MaxQueueSize)
	}
	return nil
}

func runCompare(o benchOptions, out *os.File) error {
	oldT, err := profile.ReadFile(o.compareOld)
	if err != nil {
		return err
	}
	newT, err := profile.ReadFile(o.compareNew)
	if err != nil {
		return err
	}
	res := profile.Compare(oldT, newT, profile.CompareOptions{Threshold: o.threshold})
	for _, n := range res.Notes {
		fmt.Fprintln(out, "note:", n)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(out, "warning:", w)
	}
	for _, r := range res.Regressions {
		fmt.Fprintln(out, "REGRESSION:", r)
	}
	if !res.OK() {
		fmt.Fprintf(out, "FAIL: %d gated regression(s) between %s and %s\n", len(res.Regressions), o.compareOld, o.compareNew)
		return errRegression
	}
	fmt.Fprintf(out, "OK: no gated regression between %s and %s\n", o.compareOld, o.compareNew)
	return nil
}

// writeHeapProfile triggers a GC (so the profile reflects live objects) and
// writes the heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
