package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distjoin/internal/profile"
)

// sampleTrajectory builds a minimal valid trajectory with one deterministic
// workload whose gated counters the tests perturb.
func sampleTrajectory(nodeIO int64) *profile.Trajectory {
	p := profile.Profile{
		SchemaVersion: profile.SchemaVersion,
		Label:         "even-hybrid",
		WallSeconds:   0.5,
		Phases:        []profile.PhaseStat{{Phase: "expand", Seconds: 0.4, Count: 100}},
		PhaseSeconds:  0.4,
		Coverage:      0.8,
	}
	p.Counters.PairsReported = 1000
	p.Counters.NodeIO = nodeIO
	p.Counters.DistCalcs = 50_000
	p.Counters.MaxQueueSize = 900
	return &profile.Trajectory{
		SchemaVersion: profile.SchemaVersion,
		CreatedAt:     "2026-08-05T00:00:00Z",
		Tool:          "benchrun",
		Scale:         "smoke",
		Env:           profile.CaptureEnv(),
		Workloads:     []profile.WorkloadProfile{{Name: "even-hybrid", Deterministic: true, Profile: p}},
	}
}

func writeTrajectory(t *testing.T, name string, traj *profile.Trajectory) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := traj.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs fn with a temp file as its output and returns what it wrote.
func capture(t *testing.T, fn func(out *os.File) error) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := fn(f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestCompareCleanAndRegressed(t *testing.T) {
	base := writeTrajectory(t, "old.json", sampleTrajectory(1000))
	same := writeTrajectory(t, "same.json", sampleTrajectory(1000))
	// 10% node-I/O growth: must trip the 5% default gate.
	worse := writeTrajectory(t, "worse.json", sampleTrajectory(1100))

	out, err := capture(t, func(f *os.File) error {
		return run(benchOptions{compare: true, compareOld: base, compareNew: same, threshold: 0.05}, f)
	})
	if err != nil {
		t.Fatalf("clean compare failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "OK:") {
		t.Errorf("clean compare output:\n%s", out)
	}

	out, err = capture(t, func(f *os.File) error {
		return run(benchOptions{compare: true, compareOld: base, compareNew: worse, threshold: 0.05}, f)
	})
	if !errors.Is(err, errRegression) {
		t.Fatalf("regressed compare returned %v, want errRegression\n%s", err, out)
	}
	if !strings.Contains(out, "REGRESSION:") || !strings.Contains(out, "node_io") {
		t.Errorf("regression output:\n%s", out)
	}
}

func TestCompareNondeterministicNotGated(t *testing.T) {
	oldT := sampleTrajectory(1000)
	newT := sampleTrajectory(5000)
	oldT.Workloads[0].Deterministic = false
	newT.Workloads[0].Deterministic = false
	base := writeTrajectory(t, "old.json", oldT)
	worse := writeTrajectory(t, "new.json", newT)
	out, err := capture(t, func(f *os.File) error {
		return run(benchOptions{compare: true, compareOld: base, compareNew: worse, threshold: 0.05}, f)
	})
	if err != nil {
		t.Fatalf("nondeterministic compare failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "not gated") {
		t.Errorf("expected a not-gated note:\n%s", out)
	}
}

func TestValidate(t *testing.T) {
	good := writeTrajectory(t, "good.json", sampleTrajectory(10))
	out, err := capture(t, func(f *os.File) error {
		return run(benchOptions{validate: good}, f)
	})
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !strings.Contains(out, "valid") {
		t.Errorf("validate output:\n%s", out)
	}

	bad := sampleTrajectory(10)
	bad.SchemaVersion = 99
	badPath := writeTrajectory(t, "bad.json", bad)
	if _, err := capture(t, func(f *os.File) error {
		return run(benchOptions{validate: badPath}, f)
	}); err == nil {
		t.Error("invalid file accepted")
	}
}

// TestRecordSmoke exercises the full record path: run the smoke matrix,
// write the file, re-read and validate it, then self-compare clean.
func TestRecordSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	out, err := capture(t, func(f *os.File) error {
		return run(benchOptions{scale: "smoke", out: path, cpuProfile: cpu, memProfile: mem}, f)
	})
	if err != nil {
		t.Fatalf("record: %v\n%s", err, out)
	}
	if !strings.Contains(out, "recorded trajectory point") {
		t.Errorf("record output:\n%s", out)
	}
	traj, err := profile.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if traj.Scale != "smoke" || len(traj.Workloads) < 5 {
		t.Errorf("trajectory scale %q, %d workloads", traj.Scale, len(traj.Workloads))
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("pprof profile %s missing or empty (%v)", p, err)
		}
	}
	cmp, err := capture(t, func(f *os.File) error {
		return run(benchOptions{compare: true, compareOld: path, compareNew: path, threshold: 0.05}, f)
	})
	if err != nil {
		t.Fatalf("self-compare: %v\n%s", err, cmp)
	}
}
