package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesCSV(t *testing.T) {
	for _, kind := range []string{"water", "roads", "uniform", "clustered"} {
		out := filepath.Join(t.TempDir(), kind+".csv")
		if err := run(kind, 100, 7, out, 5, 1000); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines != 100 {
			t.Fatalf("%s: %d lines, want 100", kind, lines)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 10, 1, "", 5, 100); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run("water", 0, 1, "", 5, 100); err == nil {
		t.Error("zero count accepted")
	}
	if err := run("water", 10, 1, "/nonexistent-dir/out.csv", 5, 100); err == nil {
		t.Error("unwritable path accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	run("water", 50, 42, a, 5, 100)
	run("water", 50, 42, b, 5, 100)
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same seed produced different output")
	}
}
