// Command datagen generates the synthetic spatial datasets used by the
// experiment harness and writes them as CSV (one "x,y" line per point).
//
// Usage:
//
//	datagen -kind water|roads|uniform|clustered [-n 10000] [-seed 1998] [-o out.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"distjoin/internal/buildinfo"
	"distjoin/internal/datagen"
	"distjoin/internal/geom"
)

func main() {
	kind := flag.String("kind", "water", "dataset kind: water, roads, uniform, clustered")
	n := flag.Int("n", 10_000, "number of points")
	seed := flag.Int64("seed", 1998, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	clusters := flag.Int("clusters", 10, "cluster count (clustered kind)")
	spread := flag.Float64("spread", 2_000, "cluster spread (clustered kind)")
	version := flag.Bool("version", false, "print version and build metadata, then exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("datagen"))
		return
	}

	if err := run(*kind, *n, *seed, *out, *clusters, *spread); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(kind string, n int, seed int64, out string, clusters int, spread float64) error {
	if n <= 0 {
		return fmt.Errorf("point count must be positive, got %d", n)
	}
	var pts []geom.Point
	switch kind {
	case "water":
		pts = datagen.Water(seed, n)
	case "roads":
		pts = datagen.Roads(seed, n)
	case "uniform":
		pts = datagen.Uniform(seed, n)
	case "clustered":
		pts = datagen.Clustered(seed, n, clusters, spread, 0.1)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return datagen.WritePoints(w, pts)
}
