package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"distjoin"
	"distjoin/internal/datagen"
	"distjoin/internal/server"
)

// startService boots an in-process query service over demo indexes and
// returns its host:port.
func startService(t *testing.T) string {
	t.Helper()
	water := distjoin.NewIndexFromPoints(datagen.Water(7, 400))
	roads := distjoin.NewIndexFromPoints(datagen.Roads(8, 600))
	t.Cleanup(func() { water.Close(); roads.Close() })
	reg := server.NewRegistry()
	if err := reg.RegisterIndex("water", water); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterIndex("roads", roads); err != nil {
		t.Fatal(err)
	}
	running, err := server.Start("127.0.0.1:0", server.Config{Registry: reg, TTL: time.Minute}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { running.Close() })
	return running.Addr()
}

func TestLoadgenReport(t *testing.T) {
	addr := startService(t)
	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", addr,
		"-sessions", "12", "-concurrency", "4",
		"-pulls", "3", "-k", "20",
		"-json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if rep.Failures != 0 {
		t.Fatalf("failures: %d\n%s", rep.Failures, errb.String())
	}
	// 12 sessions × 3 pulls × 20 pairs, MaxPairs = 60 per session.
	if rep.Pairs != 12*60 {
		t.Fatalf("pairs = %d, want %d", rep.Pairs, 12*60)
	}
	if rep.Pulls != 12*3 {
		t.Fatalf("pulls = %d, want %d", rep.Pulls, 12*3)
	}
	if rep.PullP50 <= 0 || rep.PullP95 < rep.PullP50 || rep.PullP99 < rep.PullP95 {
		t.Fatalf("percentiles not monotone: %+v", rep)
	}
	if !rep.SLOMet {
		t.Fatal("SLO gate tripped with no SLO configured")
	}
}

func TestLoadgenSLOGate(t *testing.T) {
	addr := startService(t)
	var out, errb bytes.Buffer
	// 1ns p95 SLO is unmeetable over real HTTP: the gate must trip.
	code := run([]string{
		"-addr", addr,
		"-sessions", "4", "-concurrency", "2",
		"-pulls", "2", "-k", "10",
		"-slo-p95", "1ns",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "SLO violated") {
		t.Fatalf("no SLO message: %s", errb.String())
	}
}

func TestLoadgenBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sessions", "0"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{5, 1, 4, 2, 3} // sorted: 1..5
	if p := percentile(lat, 0.50); p != 3 {
		t.Fatalf("p50 = %d", p)
	}
	if p := percentile(lat, 0.95); p != 5 {
		t.Fatalf("p95 = %d", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %d", p)
	}
}
