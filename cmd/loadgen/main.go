// Command loadgen drives a running distjoind with many concurrent cursor
// sessions and reports per-pull latency percentiles against an SLO. Each
// session is one resumable cursor: create, pull -pulls batches of -k
// pairs, delete. Sessions run -concurrency at a time until -sessions have
// completed; 409/429 responses (admission control doing its job) are
// retried with backoff and counted, not failed.
//
//	distjoind -demo 100000 -addr :8080 &
//	loadgen -addr localhost:8080 -sessions 200 -concurrency 16 -pulls 10 -k 100 -slo-p95 50ms
//
// The exit status is non-zero when the p95 create-or-pull latency exceeds
// -slo-p95 (0 disables the gate), so the command doubles as a CI check.
// -json emits the full report as one JSON document on stdout.
//
// -chaos turns each session hostile: pulls are randomly replaced by
// mid-stream client disconnects (slam the socket partway through an NDJSON
// stream) and by pulls under a tiny server-side deadline (?timeout_ms=1).
// Both are soft events the server must absorb — the cursor stays resumable
// and the session carries on — so chaos runs double as a cancellation
// robustness check; the report counts the injected disconnects and the
// deadline-truncated pulls. -chaos-seed makes an injection schedule
// reproducible.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"distjoin/internal/buildinfo"
	"distjoin/internal/qtrace"
)

// slowPull identifies one of the slowest pulls of a run: its latency and
// the distributed-trace id to look it up with — at the OTLP collector, in
// distjoind's request log, or via /debug/queries with the cursor id.
type slowPull struct {
	TraceID string        `json:"trace_id"`
	Cursor  string        `json:"cursor"`
	Pull    int           `json:"pull"`
	Latency time.Duration `json:"latency_ns"`
}

// report is the machine-readable result document.
type report struct {
	Sessions    int    `json:"sessions"`
	Concurrency int    `json:"concurrency"`
	PullsPerSes int    `json:"pulls_per_session"`
	K           int    `json:"k"`
	Kind        string `json:"kind"`
	Pairs       int64  `json:"pairs"`
	Pulls       int    `json:"pulls"`
	Failures    int64  `json:"failures"`
	Throttled   int64  `json:"throttled"`
	// Chaos counters (all zero without -chaos): injected mid-stream client
	// disconnects, and pulls the server truncated at the injected deadline.
	ChaosDisconnects int64         `json:"chaos_disconnects"`
	ChaosTimeouts    int64         `json:"chaos_timeouts"`
	Wall             time.Duration `json:"wall_ns"`
	CreateP50        time.Duration `json:"create_p50_ns"`
	CreateP95        time.Duration `json:"create_p95_ns"`
	CreateP99        time.Duration `json:"create_p99_ns"`
	PullP50          time.Duration `json:"pull_p50_ns"`
	PullP95          time.Duration `json:"pull_p95_ns"`
	PullP99          time.Duration `json:"pull_p99_ns"`
	SLOP95           time.Duration `json:"slo_p95_ns"`
	SLOMet           bool          `json:"slo_met"`
	// TraceMismatches counts responses whose traceparent echo did not carry
	// the session's trace id (0 when propagation works, or with -trace=false).
	TraceMismatches int64 `json:"trace_mismatches"`
	// SlowestPulls lists the worst pull latencies with their trace ids.
	SlowestPulls []slowPull `json:"slowest_pulls,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr        = fs.String("addr", "localhost:8080", "distjoind host:port")
		sessions    = fs.Int("sessions", 50, "total cursor sessions to run")
		concurrency = fs.Int("concurrency", 8, "sessions in flight at once")
		pulls       = fs.Int("pulls", 5, "next-pulls per session")
		k           = fs.Int("k", 50, "pairs per pull")
		kind        = fs.String("kind", "join", "operation: join, semijoin, knn, clustering")
		index1      = fs.String("index1", "water", "first index name")
		index2      = fs.String("index2", "roads", "second index name")
		knnK        = fs.Int("knn-k", 3, "k for -kind knn")
		sloP95      = fs.Duration("slo-p95", 0, "fail (exit 1) when p95 latency exceeds this (0 = no gate)")
		jsonOut     = fs.Bool("json", false, "print the report as JSON on stdout")
		chaos       = fs.Bool("chaos", false, "inject random mid-stream disconnects and per-pull deadlines")
		chaosSeed   = fs.Int64("chaos-seed", 1, "seed for the -chaos injection schedule")
		trace       = fs.Bool("trace", true, "send a per-session W3C traceparent and verify the server echoes the trace id")
	)
	version := fs.Bool("version", false, "print version and build metadata, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(out, buildinfo.String("loadgen"))
		return 0
	}
	if *sessions < 1 || *concurrency < 1 || *pulls < 1 || *k < 1 {
		fmt.Fprintln(errw, "loadgen: -sessions, -concurrency, -pulls and -k must be positive")
		return 2
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}

	var (
		mu                    sync.Mutex
		createLat, pullLat    []time.Duration
		pairs, failures       int64
		throttled             int64
		disconnects, timeouts int64
		traceMismatch         int64
		slowPulls             []slowPull
		wg                    sync.WaitGroup
		sem                   = make(chan struct{}, *concurrency)
	)
	record := func(lat *[]time.Duration, d time.Duration) {
		mu.Lock()
		*lat = append(*lat, d)
		mu.Unlock()
	}
	fail := func(format string, a ...any) {
		mu.Lock()
		failures++
		mu.Unlock()
		fmt.Fprintf(errw, "loadgen: "+format+"\n", a...)
	}
	// checkEcho verifies the response joined the session's distributed
	// trace: the server echoes a traceparent in the session's trace id.
	checkEcho := func(resp *http.Response, tid qtrace.TraceID) {
		if !*trace {
			return
		}
		sc, ok := qtrace.ParseTraceParent(resp.Header.Get("Traceparent"))
		if !ok || sc.TraceID != tid {
			mu.Lock()
			traceMismatch++
			mu.Unlock()
		}
	}

	// doRetry performs req, retrying 409/429 (admission pushback) with
	// linear backoff. Any other outcome is returned as-is.
	doRetry := func(mk func() (*http.Request, error)) (*http.Response, []byte, error) {
		for attempt := 0; ; attempt++ {
			req, err := mk()
			if err != nil {
				return nil, nil, err
			}
			resp, err := client.Do(req)
			if err != nil {
				return nil, nil, err
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, nil, err
			}
			if (resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusConflict) && attempt < 50 {
				mu.Lock()
				throttled++
				mu.Unlock()
				time.Sleep(time.Duration(attempt+1) * 2 * time.Millisecond)
				continue
			}
			return resp, raw, nil
		}
	}

	start := time.Now()
	for s := 0; s < *sessions; s++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(s int) {
			defer wg.Done()
			defer func() { <-sem }()

			qreq := map[string]any{
				"kind": *kind, "index1": *index1, "index2": *index2,
				"max_pairs": *pulls * *k,
			}
			if *kind == "knn" {
				qreq["k"] = *knnK
			}
			body, _ := json.Marshal(qreq)
			// One client root span context per session: create and every pull
			// carry it, so the whole cursor session stitches into one trace.
			var root qtrace.SpanContext
			var tp string
			if *trace {
				root = qtrace.SpanContext{TraceID: qtrace.NewTraceID(), SpanID: qtrace.NewSpanID(), Flags: qtrace.FlagSampled}
				tp = root.TraceParent()
			}
			t0 := time.Now()
			resp, raw, err := doRetry(func() (*http.Request, error) {
				req, err := http.NewRequest(http.MethodPost, base+"/v1/query", bytes.NewReader(body))
				if err == nil && tp != "" {
					req.Header.Set("traceparent", tp)
				}
				return req, err
			})
			if err != nil {
				fail("session %d create: %v", s, err)
				return
			}
			record(&createLat, time.Since(t0))
			checkEcho(resp, root.TraceID)
			if resp.StatusCode != http.StatusCreated {
				fail("session %d create: %d: %s", s, resp.StatusCode, raw)
				return
			}
			var cr struct {
				Cursor string `json:"cursor"`
			}
			if err := json.Unmarshal(raw, &cr); err != nil {
				fail("session %d create: %v", s, err)
				return
			}

			// The chaos schedule is per-session deterministic under
			// -chaos-seed, so a failing run can be replayed.
			var rng *rand.Rand
			if *chaos {
				rng = rand.New(rand.NewSource(*chaosSeed<<20 + int64(s)))
			}
			for p := 0; p < *pulls; p++ {
				pullURL := fmt.Sprintf("%s/v1/cursor/%s/next?k=%d", base, cr.Cursor, *k)
				chaosPull := false
				if rng != nil {
					switch rng.Intn(3) {
					case 1:
						// Mid-stream disconnect: open an NDJSON stream far
						// larger than one batch, read a sliver, slam the
						// socket. The server must stop engine work (the pull
						// context dies) yet keep the cursor resumable for the
						// session's next pull.
						req, err := http.NewRequest(http.MethodGet,
							fmt.Sprintf("%s/v1/cursor/%s/stream?k=%d", base, cr.Cursor, *k*100), nil)
						if err == nil {
							if resp, err := client.Do(req); err == nil {
								io.ReadFull(resp.Body, make([]byte, 512))
								resp.Body.Close()
							}
						}
						mu.Lock()
						disconnects++
						mu.Unlock()
						continue
					case 2:
						// Near-certain server-side truncation: the pull runs
						// under a 1ms deadline and returns whatever prefix it
						// managed, with the reason in the truncated field.
						pullURL += "&timeout_ms=1"
						chaosPull = true
					}
				}
				t0 := time.Now()
				resp, raw, err := doRetry(func() (*http.Request, error) {
					req, err := http.NewRequest(http.MethodGet, pullURL, nil)
					if err == nil && tp != "" {
						req.Header.Set("traceparent", tp)
					}
					return req, err
				})
				if err != nil {
					fail("session %d pull %d: %v", s, p, err)
					return
				}
				checkEcho(resp, root.TraceID)
				if !chaosPull {
					d := time.Since(t0)
					record(&pullLat, d)
					if tp != "" {
						mu.Lock()
						slowPulls = append(slowPulls, slowPull{TraceID: root.TraceID.String(), Cursor: cr.Cursor, Pull: p, Latency: d})
						mu.Unlock()
					}
				}
				if resp.StatusCode != http.StatusOK {
					fail("session %d pull %d: %d: %s", s, p, resp.StatusCode, raw)
					return
				}
				var nr struct {
					Pairs     []json.RawMessage `json:"pairs"`
					Done      bool              `json:"done"`
					Truncated string            `json:"truncated"`
				}
				if err := json.Unmarshal(raw, &nr); err != nil {
					fail("session %d pull %d: %v", s, p, err)
					return
				}
				mu.Lock()
				pairs += int64(len(nr.Pairs))
				if nr.Truncated != "" {
					timeouts++
				}
				mu.Unlock()
				if nr.Done {
					break
				}
			}

			req, _ := http.NewRequest(http.MethodDelete, base+"/v1/cursor/"+cr.Cursor, nil)
			if resp, err := client.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	// The worst pull latencies, with the trace ids to chase them by.
	sort.Slice(slowPulls, func(i, j int) bool { return slowPulls[i].Latency > slowPulls[j].Latency })
	if len(slowPulls) > 5 {
		slowPulls = slowPulls[:5]
	}

	rep := report{
		Sessions:         *sessions,
		Concurrency:      *concurrency,
		PullsPerSes:      *pulls,
		K:                *k,
		Kind:             *kind,
		Pairs:            pairs,
		Pulls:            len(pullLat),
		Failures:         failures,
		Throttled:        throttled,
		ChaosDisconnects: disconnects,
		ChaosTimeouts:    timeouts,
		Wall:             wall,
		CreateP50:        percentile(createLat, 0.50),
		CreateP95:        percentile(createLat, 0.95),
		CreateP99:        percentile(createLat, 0.99),
		PullP50:          percentile(pullLat, 0.50),
		PullP95:          percentile(pullLat, 0.95),
		PullP99:          percentile(pullLat, 0.99),
		SLOP95:           *sloP95,
		TraceMismatches:  traceMismatch,
		SlowestPulls:     slowPulls,
	}
	worstP95 := rep.CreateP95
	if rep.PullP95 > worstP95 {
		worstP95 = rep.PullP95
	}
	rep.SLOMet = *sloP95 == 0 || (failures == 0 && worstP95 <= *sloP95)

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Fprintf(out, "loadgen: %d sessions × %d pulls × k=%d (%s), concurrency %d\n",
			*sessions, *pulls, *k, *kind, *concurrency)
		fmt.Fprintf(out, "  %d pairs over %d pulls in %v (%d throttled, %d failures)\n",
			pairs, len(pullLat), wall.Round(time.Millisecond), throttled, failures)
		if *chaos {
			fmt.Fprintf(out, "  chaos   %d disconnects injected, %d pulls deadline-truncated\n",
				disconnects, timeouts)
		}
		fmt.Fprintf(out, "  create  p50 %-10v p95 %-10v p99 %v\n", rep.CreateP50, rep.CreateP95, rep.CreateP99)
		fmt.Fprintf(out, "  pull    p50 %-10v p95 %-10v p99 %v\n", rep.PullP50, rep.PullP95, rep.PullP99)
		if *trace {
			fmt.Fprintf(out, "  trace   %d echo mismatches\n", traceMismatch)
			for _, sp := range slowPulls {
				fmt.Fprintf(out, "  slow    %-12v trace=%s cursor=%s pull=%d\n", sp.Latency, sp.TraceID, sp.Cursor, sp.Pull)
			}
		}
	}
	if !rep.SLOMet {
		fmt.Fprintf(errw, "loadgen: SLO violated: worst p95 %v > %v (or failures)\n", worstP95, *sloP95)
		return 1
	}
	return 0
}

// percentile returns the q-th latency quantile by nearest-rank on a sorted
// copy; zero when no samples were collected.
func percentile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
