package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestBadInvocations checks flag and configuration errors exit non-zero
// without starting a listener.
func TestBadInvocations(t *testing.T) {
	for name, tc := range map[string]struct {
		args []string
		code int
	}{
		"no-indexes":   {[]string{"-addr", "127.0.0.1:0"}, 2},
		"bad-index":    {[]string{"-index", "nopath"}, 2},
		"bad-csv":      {[]string{"-csv", "nopath"}, 2},
		"missing-file": {[]string{"-index", "x=/does/not/exist"}, 1},
		"bad-flag":     {[]string{"-nope"}, 2},
	} {
		t.Run(name, func(t *testing.T) {
			errw, err := os.CreateTemp(t.TempDir(), "stderr")
			if err != nil {
				t.Fatal(err)
			}
			defer errw.Close()
			if got := run(tc.args, errw); got != tc.code {
				t.Fatalf("exit code %d, want %d", got, tc.code)
			}
		})
	}
}

// TestServeSessionAndShutdown boots the daemon on an ephemeral port with
// demo indexes plus a CSV-registered one, runs a cursor session against it
// (create, next, pause, resume, delete), checks the observability routes,
// and shuts down via SIGTERM.
func TestServeSessionAndShutdown(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "pts.csv")
	var b strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "%d,%d\n", (i*37)%1000, (i*91)%1000)
	}
	if err := os.WriteFile(csvPath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	errPath := filepath.Join(dir, "stderr")
	errw, err := os.Create(errPath)
	if err != nil {
		t.Fatal(err)
	}
	defer errw.Close()

	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-demo", "300",
			"-csv", "extra=" + csvPath,
			"-flightrec", "32",
			"-slowlog", filepath.Join(dir, "slow.jsonl"),
			"-cursor-ttl", "1m",
		}, errw)
	}()

	// The daemon prints its bound address to stderr once serving.
	addrRe := regexp.MustCompile(`serving (\d+) indexes on ([^"\s]+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			raw, _ := os.ReadFile(errPath)
			t.Fatalf("daemon never came up; stderr:\n%s", raw)
		}
		raw, _ := os.ReadFile(errPath)
		if m := addrRe.FindStringSubmatch(string(raw)); m != nil {
			if m[1] != "3" {
				t.Fatalf("registered %s indexes, want 3", m[1])
			}
			addr = m[2]
		}
		time.Sleep(20 * time.Millisecond)
	}
	base := "http://" + addr

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}

	// Full cursor session: create → next → pause → resume → delete.
	resp, err := http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"kind":"join","index1":"water","index2":"extra","max_pairs":30}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("create: %d: %s", resp.StatusCode, raw)
	}
	var cr struct {
		Cursor string `json:"cursor"`
	}
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	code, raw := get("/v1/cursor/" + cr.Cursor + "/next?k=10")
	if code != 200 || !strings.Contains(string(raw), `"pairs"`) {
		t.Fatalf("next: %d: %s", code, raw)
	}
	time.Sleep(50 * time.Millisecond) // the pause
	code, raw = get("/v1/cursor/" + cr.Cursor + "/next?k=100")
	if code != 200 || !strings.Contains(string(raw), `"done":true`) {
		t.Fatalf("resume: %d: %s", code, raw)
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/cursor/"+cr.Cursor, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != 204 {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}

	// Observability: metrics text, flight recorder (trace landed under the
	// cursor id after delete closed the engine).
	if code, raw := get("/metrics"); code != 200 || !strings.Contains(string(raw), "distjoin_pairs_delivered_total") {
		t.Fatalf("metrics: %d: %.200s", code, raw)
	}
	if code, raw := get("/debug/queries/" + cr.Cursor); code != 200 || !strings.Contains(string(raw), `"join"`) {
		t.Fatalf("debug query trace: %d: %s", code, raw)
	}

	// SIGTERM drains and exits 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case codeExit := <-done:
		if codeExit != 0 {
			raw, _ := os.ReadFile(errPath)
			t.Fatalf("exit %d; stderr:\n%s", codeExit, raw)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down on SIGTERM")
	}
	raw2, _ := os.ReadFile(errPath)
	if !strings.Contains(string(raw2), "drained in") {
		t.Fatalf("no drain line in stderr:\n%s", raw2)
	}
}
