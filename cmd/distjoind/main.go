// Command distjoind serves incremental distance joins over HTTP as
// resumable cursors. A client creates a cursor over a pair of named
// indexes (POST /v1/query), pulls the next k pairs in distance order
// (GET /v1/cursor/<id>/next?k=N) as often and as slowly as it likes, and
// deletes the cursor when done — the paper's pull-one-pair-at-a-time
// iterator, stretched over a network connection. Cursors survive client
// pauses in a bounded TTL-evicted table; admission control (cursor slots,
// in-flight limit, a shared queue-memory budget) keeps many concurrent
// clients from sinking the process.
//
// Indexes come from persisted R*-tree files (-index name=path), CSV point
// sets (-csv name=path, built into an in-memory R*-tree at startup), or a
// deterministic synthetic demo pair (-demo n: "water" and "roads").
//
//	distjoind -demo 50000 -addr :8080 -flightrec 256 -slowlog slow.jsonl
//	curl -s localhost:8080/v1/indexes
//	curl -s -X POST localhost:8080/v1/query -d '{"kind":"join","index1":"water","index2":"roads"}'
//	curl -s localhost:8080/v1/cursor/c0000001/next?k=100
//	curl -s -X DELETE localhost:8080/v1/cursor/c0000001
//
// /metrics serves Prometheus text (engine counters + per-query gauges),
// /debug/queries the flight recorder, /debug/pprof the usual profiles.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"distjoin"
	"distjoin/internal/buildinfo"
	"distjoin/internal/datagen"
	"distjoin/internal/obs"
	"distjoin/internal/otlpexport"
	"distjoin/internal/qtrace"
	"distjoin/internal/server"
)

// repeatable collects repeated name=path flags.
type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, errw *os.File) int {
	fs := flag.NewFlagSet("distjoind", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		indexFiles, csvFiles repeatable
		addr                 = fs.String("addr", ":8080", "listen address")
		demo                 = fs.Int("demo", 0, "register synthetic demo indexes \"water\" and \"roads\" with this many points each")
		maxCursors           = fs.Int("max-cursors", 0, "bound on concurrently open cursors (0 = default)")
		maxInflight          = fs.Int("max-inflight", 0, "bound on concurrently served pulls (0 = default)")
		memBudget            = fs.Int64("mem-budget", 0, "shared queue-memory budget in bytes across all cursors (0 = default)")
		cursorBudget         = fs.Int64("cursor-budget", 0, "default per-cursor queue-memory reservation in bytes (0 = default)")
		ttl                  = fs.Duration("cursor-ttl", 0, "idle cursor time-to-live before eviction (0 = default)")
		cursorWall           = fs.Duration("cursor-wall", 0, "per-cursor total wall budget; older cursors are canceled (0 = unlimited)")
		pullTimeout          = fs.Duration("pull-timeout", 0, "default soft deadline of one next/stream pull (0 = none)")
		drainTimeout         = fs.Duration("drain-timeout", 5*time.Second, "graceful-shutdown window on SIGINT/SIGTERM before open connections are cut")
		maxBatch             = fs.Int("max-batch", 0, "largest k honoured by one next/stream pull (0 = default)")
		flightRec            = fs.Int("flightrec", 256, "flight-recorder size: retain the last N query traces at /debug/queries")
		slowLogPath          = fs.String("slowlog", "", "write slow-query traces to this file as JSONL (size-capped, rotated)")
		slowLogMaxBytes      = fs.Int64("slowlog-max-bytes", 0, "rotate the slow-query log when a file reaches this size (0 = 64 MiB)")
		slowLogMaxFiles      = fs.Int("slowlog-max-files", 0, "total slow-query log files kept, active plus archives (0 = 3)")
		slowWall             = fs.Duration("slow-wall", 0, "slow-log queries whose wall time reaches this threshold (0 with no other threshold = log every query)")
		slowNodeIO           = fs.Int64("slow-nodeio", 0, "slow-log queries whose node I/O count reaches this threshold")
		slowDist             = fs.Int64("slow-distcalcs", 0, "slow-log queries whose distance-computation count reaches this threshold")
		otlpEndpoint         = fs.String("otlp", "", "export spans to this OTLP/HTTP-JSON endpoint (e.g. http://localhost:4318/v1/traces)")
		otlpService          = fs.String("otlp-service", "distjoind", "service.name resource attribute on exported spans")
		otlpFlush            = fs.Duration("otlp-flush", 5*time.Second, "final span-export flush window during shutdown")
		logFormat            = fs.String("log-format", "text", "structured log format on stderr: text or json")
	)
	fs.Var(&indexFiles, "index", "register a persisted R*-tree: name=path (repeatable)")
	fs.Var(&csvFiles, "csv", "register a CSV point set as an in-memory R*-tree: name=path (repeatable)")
	version := fs.Bool("version", false, "print version and build metadata, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(errw, buildinfo.String("distjoind"))
		return 0
	}

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(errw, nil)
	case "json":
		handler = slog.NewJSONHandler(errw, nil)
	default:
		fmt.Fprintf(errw, "distjoind: -log-format wants text or json, got %q\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	reg := server.NewRegistry()
	defer reg.Close()
	owned := make([]*distjoin.Index, 0, 4)
	defer func() {
		for _, idx := range owned {
			idx.Close()
		}
	}()
	for _, spec := range indexFiles {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(errw, "distjoind: -index wants name=path, got %q\n", spec)
			return 2
		}
		if err := reg.OpenFile(name, path); err != nil {
			logger.Error("opening index", "name", name, "path", path, "err", err)
			return 1
		}
	}
	for _, spec := range csvFiles {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fmt.Fprintf(errw, "distjoind: -csv wants name=path, got %q\n", spec)
			return 2
		}
		f, err := os.Open(path)
		if err != nil {
			logger.Error("opening csv", "name", name, "path", path, "err", err)
			return 1
		}
		pts, err := datagen.ReadPoints(f)
		f.Close()
		if err != nil {
			logger.Error("reading csv", "path", path, "err", err)
			return 1
		}
		idx := distjoin.NewIndexFromPoints(pts)
		owned = append(owned, idx)
		if err := reg.RegisterIndex(name, idx); err != nil {
			logger.Error("registering csv index", "name", name, "err", err)
			return 1
		}
	}
	if *demo > 0 {
		water := distjoin.NewIndexFromPoints(datagen.Water(7, *demo))
		roads := distjoin.NewIndexFromPoints(datagen.Roads(8, *demo))
		owned = append(owned, water, roads)
		if err := reg.RegisterIndex("water", water); err != nil {
			logger.Error("registering demo index", "name", "water", "err", err)
			return 1
		}
		if err := reg.RegisterIndex("roads", roads); err != nil {
			logger.Error("registering demo index", "name", "roads", "err", err)
			return 1
		}
	}
	if len(reg.List()) == 0 {
		fmt.Fprintln(errw, "distjoind: no indexes registered; use -index, -csv or -demo")
		return 2
	}

	traceCfg := distjoin.QueryTraceConfig{
		FlightSize:    *flightRec,
		SlowWall:      *slowWall,
		SlowNodeIO:    *slowNodeIO,
		SlowDistCalcs: *slowDist,
	}
	if *slowLogPath != "" {
		// Size-capped rotation: a long-running daemon's slow-query log stays
		// bounded at about max-files × max-bytes on disk.
		slow, err := qtrace.OpenRotatingFile(*slowLogPath, *slowLogMaxBytes, *slowLogMaxFiles)
		if err != nil {
			logger.Error("opening slow-query log", "path", *slowLogPath, "err", err)
			return 1
		}
		defer slow.Close()
		traceCfg.SlowLog = slow
	}
	var exporter *otlpexport.Exporter
	if *otlpEndpoint != "" {
		exporter = otlpexport.New(otlpexport.Config{
			Endpoint: *otlpEndpoint,
			Service:  *otlpService,
			Logger:   logger,
		})
		defer exporter.Close()
		// Every finished cursor's engine span tree ships to the collector;
		// the server adds one span per pull on top.
		traceCfg.OnComplete = exporter.OnComplete
	}
	tracer := distjoin.NewQueryTracer(traceCfg)
	defer tracer.Close()
	rec := distjoin.NewRecorder(distjoin.ObsConfig{})
	counters := &distjoin.Stats{}
	red := obs.NewRED(obs.REDConfig{})

	running, err := server.Start(*addr, server.Config{
		Registry:            reg,
		MaxCursors:          *maxCursors,
		MaxInflight:         *maxInflight,
		MemBudget:           *memBudget,
		DefaultCursorBudget: *cursorBudget,
		MaxBatch:            *maxBatch,
		TTL:                 *ttl,
		MaxCursorWall:       *cursorWall,
		PullTimeout:         *pullTimeout,
		Tracer:              tracer,
		Obs:                 rec,
		Stats:               counters,
		Logger:              logger,
		RED:                 red,
		Exporter:            exporter,
	}, func(mux *http.ServeMux) {
		// /metrics = engine counters + per-query gauges + RED/SLO families +
		// OTLP exporter health, one exposition.
		mux.Handle("/metrics", obs.HandlerTraced(rec, counters, tracer,
			red.WritePrometheus, exporter.WritePrometheus))
		mux.Handle("/debug/queries", distjoin.QueriesHandler("/debug/queries", tracer))
		mux.Handle("/debug/queries/", distjoin.QueriesHandler("/debug/queries", tracer))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	})
	if err != nil {
		logger.Error("starting server", "addr", *addr, "err", err)
		return 1
	}
	logger.Info(fmt.Sprintf("serving %d indexes on %s", len(reg.List()), running.Addr()),
		"indexes", len(reg.List()), "addr", running.Addr(), "otlp", *otlpEndpoint)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Info(fmt.Sprintf("%v — draining (up to %v)", s, *drainTimeout),
		"signal", s.String(), "window", *drainTimeout)
	start := time.Now()
	// Graceful drain: /readyz flips to 503, every cursor is hard-canceled
	// (live pulls surface the cancellation in their stream trailers), and
	// the listener stays up through the window so clients observe their
	// 410s; a second signal force-quits immediately.
	done := make(chan error, 1)
	go func() { done <- running.Shutdown(*drainTimeout) }()
	select {
	case err := <-done:
		if err != nil {
			logger.Error("shutdown", "err", err)
			return 1
		}
	case s := <-sig:
		logger.Error(fmt.Sprintf("%v again — forcing exit", s), "signal", s.String())
		running.Close()
		return 1
	}
	if exporter != nil {
		// The drain closed every cursor, landing their query traces in the
		// exporter's queue; push the tail out before exiting.
		if err := exporter.Flush(*otlpFlush); err != nil {
			logger.Warn("final span flush", "err", err)
		}
		st := exporter.StatsSnapshot()
		logger.Info("span export drained",
			"exported", st.ExportedSpans, "dropped_queue", st.DroppedQueue, "dropped_export", st.DroppedExport)
	}
	logger.Info(fmt.Sprintf("drained in %v", time.Since(start).Round(time.Millisecond)),
		"elapsed", time.Since(start).Round(time.Millisecond))
	return 0
}
