package distjoin_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"distjoin"
)

func randomPoints(seed int64, n int) []distjoin.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]distjoin.Point, n)
	for i := range pts {
		pts[i] = distjoin.Pt(rnd.Float64()*100, rnd.Float64()*100)
	}
	return pts
}

func TestPublicAPIQuickstart(t *testing.T) {
	a := randomPoints(1, 100)
	b := randomPoints(2, 120)
	ia := distjoin.NewIndexFromPoints(a)
	defer ia.Close()
	ib := distjoin.NewIndexFromPoints(b)
	defer ib.Close()

	j, err := distjoin.DistanceJoin(ia, ib, distjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	var dists []float64
	for len(dists) < 50 {
		p, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		dists = append(dists, p.Dist)
	}
	// Verify ascending order and correctness of the first pair.
	best := math.Inf(1)
	for _, p := range a {
		for _, q := range b {
			if d := distjoin.Euclidean.Dist(p, q); d < best {
				best = d
			}
		}
	}
	if math.Abs(dists[0]-best) > 1e-9 {
		t.Fatalf("first pair dist %g, true closest %g", dists[0], best)
	}
	if !sort.Float64sAreSorted(dists) {
		t.Fatal("pairs not in ascending distance order")
	}
}

func TestPublicAPISemiJoin(t *testing.T) {
	stores := randomPoints(3, 60)
	warehouses := randomPoints(4, 8)
	is := distjoin.NewIndexFromPoints(stores)
	defer is.Close()
	iw := distjoin.NewIndexFromPoints(warehouses)
	defer iw.Close()

	s, err := distjoin.DistanceSemiJoin(is, iw, distjoin.FilterGlobalAll, distjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	count := 0
	for {
		p, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		// Assignment must be to the true nearest warehouse.
		best := math.Inf(1)
		for _, w := range warehouses {
			if d := distjoin.Euclidean.Dist(stores[p.Obj1], w); d < best {
				best = d
			}
		}
		if math.Abs(p.Dist-best) > 1e-9 {
			t.Fatalf("store %d: %g vs nearest %g", p.Obj1, p.Dist, best)
		}
		count++
	}
	if count != len(stores) {
		t.Fatalf("semi-join reported %d stores, want %d", count, len(stores))
	}
}

func TestPublicAPINearestNeighbors(t *testing.T) {
	pts := randomPoints(5, 200)
	idx := distjoin.NewIndexFromPoints(pts)
	defer idx.Close()
	q := distjoin.Pt(50, 50)
	res, err := distjoin.KNearest(idx, q, 10, distjoin.NNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("got %d neighbours", len(res))
	}
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = distjoin.Euclidean.Dist(q, p)
	}
	sort.Float64s(want)
	for i, r := range res {
		if math.Abs(r.Dist-want[i]) > 1e-9 {
			t.Fatalf("neighbour %d: %g, want %g", i, r.Dist, want[i])
		}
	}
}

func TestPublicAPIIndexCRUD(t *testing.T) {
	idx, err := distjoin.NewIndex(distjoin.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	for i, p := range randomPoints(6, 300) {
		if err := idx.InsertPoint(p, distjoin.ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 300 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	found := 0
	idx.Search(distjoin.R(distjoin.Pt(0, 0), distjoin.Pt(100, 100)), func(distjoin.Rect, distjoin.ObjID) bool {
		found++
		return true
	})
	if found != 300 {
		t.Fatalf("search found %d", found)
	}
	pts := randomPoints(6, 300)
	ok, err := idx.Delete(pts[0].Rect(), 0)
	if err != nil || !ok {
		t.Fatalf("delete failed: %v %v", ok, err)
	}
	if idx.Len() != 299 {
		t.Fatalf("Len after delete = %d", idx.Len())
	}
}

func TestPublicAPIStats(t *testing.T) {
	a := randomPoints(7, 500)
	b := randomPoints(8, 500)
	ia := distjoin.NewIndexFromPoints(a)
	defer ia.Close()
	ib := distjoin.NewIndexFromPoints(b)
	defer ib.Close()
	c := &distjoin.Stats{}
	ia.SetCounters(c)
	ib.SetCounters(c)
	j, err := distjoin.DistanceJoin(ia, ib, distjoin.Options{Counters: c})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 100; i++ {
		if _, ok, err := j.Next(); err != nil || !ok {
			t.Fatalf("Next %d: %v %v", i, ok, err)
		}
	}
	if c.DistCalcs == 0 || c.MaxQueueSize == 0 || c.PairsReported != 100 {
		t.Fatalf("counters not recording: %+v", c)
	}
}

func TestPublicAPICloseTwice(t *testing.T) {
	idx := distjoin.NewIndexFromPoints(randomPoints(9, 5))
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err == nil {
		t.Fatal("double close succeeded")
	}
}

func TestPublicAPIQuadIndexAndMixedJoin(t *testing.T) {
	a := randomPoints(11, 150)
	b := randomPoints(12, 180)
	rIdx := distjoin.NewIndexFromPoints(a)
	defer rIdx.Close()
	qIdx, err := distjoin.NewQuadIndex(distjoin.QuadConfig{
		Bounds: distjoin.R(distjoin.Pt(0, 0), distjoin.Pt(100, 100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range b {
		if err := qIdx.InsertPoint(p, distjoin.ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if qIdx.Len() != len(b) {
		t.Fatalf("quad Len = %d", qIdx.Len())
	}

	// Heterogeneous join: R*-tree against quadtree.
	j, err := distjoin.DistanceJoinIndexes(rIdx.AsSpatialIndex(), qIdx.AsSpatialIndex(), distjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var dists []float64
	for len(dists) < 400 {
		p, ok, err := j.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		dists = append(dists, p.Dist)
	}
	if !sort.Float64sAreSorted(dists) {
		t.Fatal("mixed join out of order")
	}
	// Spot check the first pair against brute force.
	best := math.Inf(1)
	for _, p := range a {
		for _, q := range b {
			if d := distjoin.Euclidean.Dist(p, q); d < best {
				best = d
			}
		}
	}
	if math.Abs(dists[0]-best) > 1e-9 {
		t.Fatalf("first mixed pair %g, want %g", dists[0], best)
	}

	// Semi-join over the mixed indexes.
	s, err := distjoin.DistanceSemiJoinIndexes(qIdx.AsSpatialIndex(), rIdx.AsSpatialIndex(),
		distjoin.FilterGlobalAll, distjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	count := 0
	for {
		_, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		count++
	}
	if count != len(b) {
		t.Fatalf("mixed semi-join reported %d, want %d", count, len(b))
	}

	// Quadtree search and delete round-trip.
	found := 0
	qIdx.Search(distjoin.R(distjoin.Pt(0, 0), distjoin.Pt(100, 100)), func(distjoin.Point, distjoin.ObjID) bool {
		found++
		return true
	})
	if found != len(b) {
		t.Fatalf("quad search found %d", found)
	}
	if !qIdx.Delete(b[0], 0) {
		t.Fatal("quad delete failed")
	}
	if qIdx.Len() != len(b)-1 {
		t.Fatal("quad Len after delete wrong")
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.pages")
	pts := randomPoints(13, 500)
	idx, err := distjoin.CreateIndexFile(path, distjoin.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := idx.InsertPoint(p, distjoin.ObjID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := distjoin.OpenIndexFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(pts) {
		t.Fatalf("reopened index Len = %d", re.Len())
	}
	// The reopened index joins correctly against a fresh one.
	other := distjoin.NewIndexFromPoints(randomPoints(14, 100))
	defer other.Close()
	p, ok, err := distjoin.ClosestPair(re, other, distjoin.Options{})
	if err != nil || !ok {
		t.Fatalf("join over reopened index: %v %v", ok, err)
	}
	if p.Dist < 0 {
		t.Fatal("nonsense distance")
	}
}

func TestPublicAPISurface(t *testing.T) {
	// Exercise the remaining small facade surfaces: Lp, BulkIndex over
	// rectangles, Insert, Scan, Height, Bounds, Tree, NearestNeighbors and
	// QuadIndex.Bounds.
	if distjoin.Lp(2) != distjoin.Euclidean {
		t.Fatal("Lp(2) != Euclidean")
	}
	items := []distjoin.IndexItem{
		{Rect: distjoin.R(distjoin.Pt(0, 0), distjoin.Pt(2, 2)), Obj: 7},
		{Rect: distjoin.R(distjoin.Pt(5, 5), distjoin.Pt(6, 8)), Obj: 9},
	}
	idx, err := distjoin.BulkIndex(distjoin.IndexConfig{}, items)
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if err := idx.Insert(distjoin.R(distjoin.Pt(1, 1), distjoin.Pt(3, 3)), 11); err != nil {
		t.Fatal(err)
	}
	seen := map[distjoin.ObjID]bool{}
	idx.Scan(func(r distjoin.Rect, id distjoin.ObjID) bool {
		seen[id] = true
		return true
	})
	if len(seen) != 3 || !seen[7] || !seen[9] || !seen[11] {
		t.Fatalf("Scan saw %v", seen)
	}
	if idx.Height() < 1 {
		t.Fatal("Height")
	}
	if b, ok := idx.Bounds(); !ok || !b.ContainsPoint(distjoin.Pt(6, 8)) {
		t.Fatalf("Bounds = %v %v", b, ok)
	}
	if idx.Tree() == nil {
		t.Fatal("Tree accessor nil")
	}

	it, err := distjoin.NearestNeighbors(idx, distjoin.Pt(0, 0), distjoin.NNOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, ok, err := it.Next()
	if err != nil || !ok {
		t.Fatalf("NearestNeighbors: %v %v", ok, err)
	}
	if r.Dist != 0 { // query point touches the first rectangle
		t.Fatalf("first neighbour dist %g", r.Dist)
	}

	q, err := distjoin.NewQuadIndex(distjoin.QuadConfig{
		Bounds: distjoin.R(distjoin.Pt(0, 0), distjoin.Pt(10, 10)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Bounds().ContainsPoint(distjoin.Pt(5, 5)) {
		t.Fatal("QuadIndex.Bounds wrong")
	}
}
