package distjoin

import (
	"distjoin/internal/distjoin"
	"distjoin/internal/pager"
)

// PageID identifies a page in a PageStore.
type PageID = pager.PageID

// PageStore is the paged-storage interface behind the hybrid queue's disk
// tier (and the R*-tree). Implement it — typically by wrapping an
// existing store — to supply instrumented, throttled or fault-injecting
// storage via Options.QueueStore.
type PageStore = pager.Store

// NewMemPageStore returns an in-memory PageStore with the given page
// size, the usual base for custom store wrappers and deterministic tests.
func NewMemPageStore(pageSize int) (PageStore, error) {
	return pager.NewMemStore(pageSize)
}

// NewFilePageStore returns a PageStore backed by an unlinked scratch file
// in dir (empty means the default temp directory).
func NewFilePageStore(dir string, pageSize int) (PageStore, error) {
	return pager.NewFileStore(dir, pageSize)
}

// RetryPolicy bounds the retrying of transient storage failures; assign
// it to Options.RetryIO. See the pager package for field semantics.
type RetryPolicy = pager.RetryPolicy

// ErrTransientIO classifies retryable storage failures: a PageStore that
// wants the RetryIO layer to re-attempt an operation must return an error
// wrapping this sentinel.
var ErrTransientIO = pager.ErrTransient

// ErrIteratorClosed is returned by Join.Next / SemiJoin.Next after Close.
var ErrIteratorClosed = distjoin.ErrIteratorClosed

// ErrQueueStore wraps every failure of the Options.QueueStore factory, so
// callers can tell a broken storage backend from invalid join options.
var ErrQueueStore = distjoin.ErrQueueStore

// ErrCanceled is the sticky terminal error of a run whose Options.Context
// was canceled or reached its deadline: the pairs delivered before the
// cancellation are a correct ordered prefix of the result, and every
// later Next returns an error wrapping this sentinel (and the context's
// cause, so errors.Is also matches context.Canceled and
// context.DeadlineExceeded).
var ErrCanceled = distjoin.ErrCanceled

// ErrRetryInterrupted wraps the last transient storage error when a
// canceled context cut a RetryIO backoff ladder short. Errors surfaced by
// the iterator fold it under ErrCanceled; the bare sentinel is visible to
// RetryPolicy.OnFault observers.
var ErrRetryInterrupted = pager.ErrRetryInterrupted
